package shardrpc

import (
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"onex/internal/metrics"
)

// The coordinator fleet-health model: a process-global registry of every
// worker this process has talked to, maintained passively from each call
// attempt (Client feeds it from once/call) plus an optional background
// healthz probe loop. It is process-global because clients are constructed
// deep inside engine assembly (shard.Build) while fleet health is a
// property of the whole coordinator process — the API layer surfaces it on
// /v1/stats and /metrics and owns the probe loop's lifetime.

// downAfter is the consecutive-failure streak (calls + probes) that flips
// a worker to down. With the default 1s probe interval a dead worker is
// detected within a few seconds even when no queries are in flight.
const downAfter = 3

// healthWindow sizes the rolling per-worker outcome window behind the
// reported rolling error rate.
const healthWindow = 128

// probeTimeout bounds one background healthz probe.
const probeTimeout = 2 * time.Second

// DefaultProbeInterval is the probe cadence when the caller passes 0.
const DefaultProbeInterval = time.Second

// workerHealth is one worker's health state. The histogram is updated with
// lock-free atomics; everything else is guarded by FleetHealth.mu.
type workerHealth struct {
	url         string
	up          bool
	consec      int
	lastSuccess time.Time

	attempts uint64 // lifetime call attempts (probes not included)
	errors   uint64 // attempts that failed (transport error, timeout, 5xx)
	timeouts uint64
	retries  uint64 // call-level retry attempts beyond the first
	reships  uint64 // unknown_generation re-ships

	// Rolling outcome ring (true = failure), fed by attempts AND probes.
	window [healthWindow]bool
	wpos   int
	wlen   int

	// Wire-split accumulation over successful query calls: total call wall
	// vs worker-reported compute (WorkerObs.WallMicros).
	queryCalls     uint64
	callWallMicros int64
	workerMicros   int64

	hist metrics.Histogram // per-attempt latency
}

// FleetHealth tracks per-worker health for the whole process. All methods
// are safe for concurrent use. Obtain the instance via Fleet().
type FleetHealth struct {
	mu      sync.Mutex
	logger  *slog.Logger
	workers map[string]*workerHealth

	probeMu   sync.Mutex
	probeRefs int
	stopCh    chan struct{}
	doneCh    chan struct{}
	probeHTTP *http.Client
}

var fleet = &FleetHealth{
	workers:   make(map[string]*workerHealth),
	probeHTTP: &http.Client{Timeout: probeTimeout},
}

// Fleet returns the process-global fleet-health registry.
func Fleet() *FleetHealth { return fleet }

// SetLogger directs the worker up/down transition warnings (nil silences
// them, the initial state).
func (f *FleetHealth) SetLogger(l *slog.Logger) {
	f.mu.Lock()
	f.logger = l
	f.mu.Unlock()
}

// get returns (creating if needed) url's health record. Caller holds f.mu.
// A never-observed worker starts up: the first contact decides.
func (f *FleetHealth) get(url string) *workerHealth {
	wh := f.workers[url]
	if wh == nil {
		wh = &workerHealth{url: url, up: true}
		f.workers[url] = wh
	}
	return wh
}

// outcome pushes one success/failure into the rolling window and runs the
// up/down transition rule. Caller holds f.mu.
func (f *FleetHealth) outcome(wh *workerHealth, failed bool) {
	wh.window[wh.wpos] = failed
	wh.wpos = (wh.wpos + 1) % healthWindow
	if wh.wlen < healthWindow {
		wh.wlen++
	}
	if failed {
		wh.consec++
		if wh.up && wh.consec >= downAfter {
			wh.up = false
			if f.logger != nil {
				f.logger.Warn("worker down", "worker", wh.url,
					"consecutiveFailures", wh.consec)
			}
		}
		return
	}
	wh.consec = 0
	wh.lastSuccess = time.Now()
	if !wh.up {
		wh.up = true
		if f.logger != nil {
			f.logger.Warn("worker up", "worker", wh.url)
		}
	}
}

// observeAttempt records one HTTP attempt against url. failed marks
// transport errors, timeouts and 5xx answers (a 4xx is a healthy worker
// disagreeing); timeout additionally bumps the timeout counter.
func (f *FleetHealth) observeAttempt(url string, d time.Duration, failed, timeout bool) {
	f.mu.Lock()
	wh := f.get(url)
	wh.attempts++
	if failed {
		wh.errors++
	}
	if timeout {
		wh.timeouts++
	}
	f.outcome(wh, failed)
	f.mu.Unlock()
	wh.hist.Observe(d)
}

// observeCall records a successful query call's roll-up: retry/re-ship
// counters plus the call-wall vs worker-compute split (workerMicros 0 when
// the response carried no payload).
func (f *FleetHealth) observeCall(url string, wall time.Duration, workerMicros int64, retries, reships int) {
	f.mu.Lock()
	wh := f.get(url)
	wh.retries += uint64(retries)
	wh.reships += uint64(reships)
	wh.queryCalls++
	wh.callWallMicros += wall.Microseconds()
	wh.workerMicros += workerMicros
	f.mu.Unlock()
}

// observeCallFailed folds a failed call's retry/re-ship counters (the
// attempts themselves were already recorded individually).
func (f *FleetHealth) observeCallFailed(url string, retries, reships int) {
	if retries == 0 && reships == 0 {
		return
	}
	f.mu.Lock()
	wh := f.get(url)
	wh.retries += uint64(retries)
	wh.reships += uint64(reships)
	f.mu.Unlock()
}

// observeProbe records one background healthz probe outcome. Probes feed
// the rolling window and the up/down rule but not the call latency
// histogram or attempt counters.
func (f *FleetHealth) observeProbe(url string, ok bool) {
	f.mu.Lock()
	f.outcome(f.get(url), !ok)
	f.mu.Unlock()
}

// StartProbes starts (or joins) the background healthz probe loop at the
// given interval (0 = DefaultProbeInterval; the first active caller's
// interval wins). The returned stop function is idempotent; the loop exits
// when every caller has stopped.
func (f *FleetHealth) StartProbes(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	f.probeMu.Lock()
	f.probeRefs++
	if f.probeRefs == 1 {
		f.stopCh = make(chan struct{})
		f.doneCh = make(chan struct{})
		go f.probeLoop(interval, f.stopCh, f.doneCh)
	}
	stopCh, doneCh := f.stopCh, f.doneCh
	f.probeMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			f.probeMu.Lock()
			f.probeRefs--
			last := f.probeRefs == 0
			f.probeMu.Unlock()
			if last {
				close(stopCh)
				<-doneCh
			}
		})
	}
}

func (f *FleetHealth) probeLoop(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			f.probeAll()
		}
	}
}

// probeAll probes every known worker's healthz once.
func (f *FleetHealth) probeAll() {
	f.mu.Lock()
	urls := make([]string, 0, len(f.workers))
	for u := range f.workers {
		urls = append(urls, u)
	}
	f.mu.Unlock()
	for _, u := range urls {
		req, err := http.NewRequest(http.MethodGet, u+"/worker/v1/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := f.probeHTTP.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		f.observeProbe(u, ok)
	}
}

// WorkerStatus is one worker's health snapshot, shaped for the /v1/stats
// "workers" section.
type WorkerStatus struct {
	URL                 string  `json:"url"`
	Up                  bool    `json:"up"`
	ConsecutiveFailures int     `json:"consecutiveFailures"`
	LastSuccess         string  `json:"lastSuccess,omitempty"`
	Attempts            uint64  `json:"attempts"`
	Errors              uint64  `json:"errors"`
	RollingErrorRate    float64 `json:"rollingErrorRate"`
	P50Millis           float64 `json:"p50Millis"`
	P99Millis           float64 `json:"p99Millis"`
	Retries             uint64  `json:"retries"`
	Reships             uint64  `json:"reships"`
	Timeouts            uint64  `json:"timeouts"`
}

// statusLocked summarizes wh. Caller holds f.mu.
func (wh *workerHealth) statusLocked() WorkerStatus {
	st := WorkerStatus{
		URL:                 wh.url,
		Up:                  wh.up,
		ConsecutiveFailures: wh.consec,
		Attempts:            wh.attempts,
		Errors:              wh.errors,
		Retries:             wh.retries,
		Reships:             wh.reships,
		Timeouts:            wh.timeouts,
	}
	if !wh.lastSuccess.IsZero() {
		st.LastSuccess = wh.lastSuccess.UTC().Format(time.RFC3339Nano)
	}
	if wh.wlen > 0 {
		fails := 0
		for i := 0; i < wh.wlen; i++ {
			if wh.window[i] {
				fails++
			}
		}
		st.RollingErrorRate = float64(fails) / float64(wh.wlen)
	}
	st.P50Millis = float64(wh.hist.Quantile(0.50)) / 1e6
	st.P99Millis = float64(wh.hist.Quantile(0.99)) / 1e6
	return st
}

// Snapshot summarizes every known worker, sorted by URL. Empty when the
// process has never talked to a worker.
func (f *FleetHealth) Snapshot() []WorkerStatus {
	f.mu.Lock()
	out := make([]WorkerStatus, 0, len(f.workers))
	for _, wh := range f.workers {
		out = append(out, wh.statusLocked())
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// FleetTotals aggregates the registry across workers — the diffable
// roll-up bench sweeps use to decompose remote overhead.
type FleetTotals struct {
	Attempts, Errors, Retries, Reships, Timeouts uint64
	// QueryCalls counts successful query calls; CallWallMicros/WorkerMicros
	// accumulate their coordinator-side wall vs worker-reported compute.
	QueryCalls     uint64
	CallWallMicros int64
	WorkerMicros   int64
}

// Totals aggregates every worker's lifetime counters.
func (f *FleetHealth) Totals() FleetTotals {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t FleetTotals
	for _, wh := range f.workers {
		t.Attempts += wh.attempts
		t.Errors += wh.errors
		t.Retries += wh.retries
		t.Reships += wh.reships
		t.Timeouts += wh.timeouts
		t.QueryCalls += wh.queryCalls
		t.CallWallMicros += wh.callWallMicros
		t.WorkerMicros += wh.workerMicros
	}
	return t
}

// WriteProm renders the onex_worker_* families. Writes nothing when the
// process has never talked to a worker, so local-only deployments keep a
// clean /metrics.
func (f *FleetHealth) WriteProm(pw *metrics.PromWriter) {
	type row struct {
		st   WorkerStatus
		hist *metrics.Histogram
	}
	f.mu.Lock()
	rows := make([]row, 0, len(f.workers))
	for _, wh := range f.workers {
		rows = append(rows, row{st: wh.statusLocked(), hist: &wh.hist})
	}
	f.mu.Unlock()
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].st.URL < rows[j].st.URL })

	label := func(u string) []metrics.Label { return []metrics.Label{{Name: "worker", Value: u}} }
	pw.Header("onex_worker_up", "Whether the worker is considered up (fleet-health model).", "gauge")
	for _, r := range rows {
		v := 0.0
		if r.st.Up {
			v = 1.0
		}
		pw.Sample("onex_worker_up", label(r.st.URL), v)
	}
	pw.Header("onex_worker_call_duration_seconds", "Worker call attempt latency.", "histogram")
	for _, r := range rows {
		pw.Hist("onex_worker_call_duration_seconds", label(r.st.URL), r.hist)
	}
	pw.Header("onex_worker_call_attempts_total", "Worker call attempts.", "counter")
	for _, r := range rows {
		pw.Sample("onex_worker_call_attempts_total", label(r.st.URL), float64(r.st.Attempts))
	}
	pw.Header("onex_worker_call_errors_total", "Worker call attempts that failed (transport error, timeout, 5xx).", "counter")
	for _, r := range rows {
		pw.Sample("onex_worker_call_errors_total", label(r.st.URL), float64(r.st.Errors))
	}
	pw.Header("onex_worker_call_timeouts_total", "Worker call attempts that timed out.", "counter")
	for _, r := range rows {
		pw.Sample("onex_worker_call_timeouts_total", label(r.st.URL), float64(r.st.Timeouts))
	}
	pw.Header("onex_worker_retries_total", "Worker call retries beyond the first attempt.", "counter")
	for _, r := range rows {
		pw.Sample("onex_worker_retries_total", label(r.st.URL), float64(r.st.Retries))
	}
	pw.Header("onex_worker_reships_total", "Shard state re-ships after unknown_generation answers.", "counter")
	for _, r := range rows {
		pw.Sample("onex_worker_reships_total", label(r.st.URL), float64(r.st.Reships))
	}
}
