package jobs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until j reaches a terminal state or the deadline passes.
func waitTerminal(t *testing.T, j *Job) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.Snapshot(); State(0).Terminal() || j.State().Terminal() {
			_ = s
			if j.State().Terminal() {
				return j.Snapshot()
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state (now %s)", j.ID(), j.State())
	return Snapshot{}
}

func TestJobLifecycleDone(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	j, err := m.Submit("match", "demo", func(ctx *Context) (any, error) {
		ctx.Progress(1, 2)
		ctx.Progress(2, 2)
		return "answer", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, j)
	if s.State != "done" || s.Result != "answer" || s.Progress != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.StartedAt == nil || s.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", s)
	}
	got, ok := m.Get(j.ID())
	if !ok || got != j {
		t.Fatal("Get did not return the job")
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.ByState["done"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	boom := errors.New("boom")
	j, err := m.Submit("range", "demo", func(*Context) (any, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, j)
	if s.State != "failed" || !errors.Is(s.Err, boom) {
		t.Fatalf("snapshot = %+v (err %v)", s, s.Err)
	}
	if s.Result != nil {
		t.Fatalf("failed job has result: %+v", s)
	}
}

func TestCancelWhileRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	started := make(chan struct{})
	j, err := m.Submit("match", "demo", func(ctx *Context) (any, error) {
		close(started)
		<-ctx.Cancel // block until canceled, like a runner between items
		return nil, ErrCanceled
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	s := waitTerminal(t, j)
	if s.State != "canceled" || !errors.Is(s.Err, ErrCanceled) {
		t.Fatalf("snapshot = %+v (err %v)", s, s.Err)
	}
	if m.Stats().Canceled != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

// A runner that ignores its Cancel channel and returns a result anyway must
// still end canceled — DELETE has deterministic semantics.
func TestCancelWinsOverLateResult(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	j, _ := m.Submit("match", "demo", func(*Context) (any, error) {
		close(started)
		<-release
		return "too late", nil
	})
	<-started
	m.Cancel(j.ID())
	close(release)
	s := waitTerminal(t, j)
	if s.State != "canceled" || s.Result != nil {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	gate := make(chan struct{})
	blocker, _ := m.Submit("match", "demo", func(*Context) (any, error) {
		<-gate
		return nil, nil
	})
	ran := false
	queued, _ := m.Submit("match", "demo", func(*Context) (any, error) {
		ran = true
		return nil, nil
	})
	m.Cancel(queued.ID())
	close(gate)
	waitTerminal(t, blocker)
	s := waitTerminal(t, queued)
	if s.State != "canceled" || ran {
		t.Fatalf("queued job state %s, ran=%v", s.State, ran)
	}
}

func TestCancelTerminalIsNoop(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, _ := m.Submit("match", "demo", func(*Context) (any, error) { return 7, nil })
	waitTerminal(t, j)
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel of done job not found")
	}
	if s := j.Snapshot(); s.State != "done" || s.Result != 7 {
		t.Fatalf("done job disturbed by cancel: %+v", s)
	}
}

func TestPollAfterTTLEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, TTL: time.Millisecond})
	defer m.Close()
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	m.now = func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}

	j, _ := m.Submit("match", "demo", func(*Context) (any, error) { return 1, nil })
	waitTerminal(t, j)
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("job evicted before TTL")
	}
	clock.Lock()
	clock.t = clock.t.Add(time.Hour)
	clock.Unlock()
	if _, ok := m.Get(j.ID()); ok {
		t.Fatal("job still pollable after TTL")
	}
	if m.Stats().Evicted != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Unknown ids look the same as evicted ones.
	if _, ok := m.Get("j-nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestBoundedTableRejectsLiveOverflow(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxJobs: 2})
	defer m.Close()
	gate := make(chan struct{})
	defer close(gate)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("match", "demo", func(ctx *Context) (any, error) {
			select {
			case <-gate:
			case <-ctx.Cancel:
			}
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit("match", "demo", func(*Context) (any, error) { return nil, nil }); !errors.Is(err, ErrTableFull) {
		t.Fatalf("overflow submit: %v", err)
	}
	if m.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestBoundedTableEvictsOldestTerminalForRoom(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxJobs: 2, TTL: -1})
	defer m.Close()
	a, _ := m.Submit("match", "demo", func(*Context) (any, error) { return "a", nil })
	waitTerminal(t, a)
	b, _ := m.Submit("match", "demo", func(*Context) (any, error) { return "b", nil })
	waitTerminal(t, b)
	// Table is full of terminal jobs; a new submit evicts the oldest (a).
	c, err := m.Submit("match", "demo", func(*Context) (any, error) { return "c", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, c)
	if _, ok := m.Get(a.ID()); ok {
		t.Fatal("oldest terminal job not evicted for room")
	}
	if _, ok := m.Get(b.ID()); !ok {
		t.Fatal("newer terminal job evicted first")
	}
}

func TestCloseAbortsInFlight(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	started := make(chan struct{}, 2)
	js := make([]*Job, 0, 4)
	for i := 0; i < 2; i++ {
		j, _ := m.Submit("match", "demo", func(ctx *Context) (any, error) {
			started <- struct{}{}
			<-ctx.Cancel
			return nil, ErrCanceled
		})
		js = append(js, j)
	}
	<-started
	<-started
	// Two more still queued.
	for i := 0; i < 2; i++ {
		j, _ := m.Submit("match", "demo", func(*Context) (any, error) { return nil, nil })
		js = append(js, j)
	}
	m.Close()
	for i, j := range js {
		if st := j.State(); st != StateCanceled {
			t.Fatalf("job %d state after Close: %s", i, st)
		}
	}
	if _, err := m.Submit("match", "demo", func(*Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

// Hammer the table from many goroutines: submits, polls, cancels and Stats
// racing each other — run under -race.
func TestConcurrentChaos(t *testing.T) {
	m := NewManager(Config{Workers: 4, MaxJobs: 64, TTL: time.Minute})
	defer m.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				j, err := m.Submit("match", fmt.Sprintf("d%d", w), func(ctx *Context) (any, error) {
					for step := 0; step < 4; step++ {
						if ctx.Canceled() {
							return nil, ErrCanceled
						}
						ctx.Progress(step+1, 4)
					}
					return "ok", nil
				})
				if errors.Is(err, ErrTableFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 0:
					m.Cancel(j.ID())
				case 1:
					j.Snapshot()
				default:
					m.Stats()
					m.List()
				}
			}
		}(w)
	}
	wg.Wait()
	// Every job must settle.
	deadline := time.Now().Add(10 * time.Second)
	for _, j := range m.List() {
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", j.ID(), j.State())
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := m.Stats()
	if st.Done+st.Failed+st.Canceled+uint64(st.ByState["queued"])+uint64(st.ByState["running"]) == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}
