// Package jobs runs long-lived work — paper-scale ONEX queries that can
// outlive an HTTP request timeout — as cancelable, pollable background
// jobs: POST submits and returns immediately with a job id, GET polls state
// and progress, DELETE cancels.
//
// The Manager owns a bounded worker pool (the same bounded-pool idiom the
// hub uses for offline builds) and a bounded job table with TTL eviction:
// terminal jobs (done/failed/canceled) are retained for Config.TTL so
// clients can fetch results, then evicted; the table never exceeds
// Config.MaxJobs entries — when it is full of retained terminal jobs the
// oldest are evicted to make room, and when it is full of live jobs new
// submissions are rejected with ErrTableFull (callers surface 503).
//
// Cancellation and progress reuse the shape of the PR 2 build hooks
// (onex.Options.Progress / Options.Cancel): a job's run function receives a
// *Context whose Cancel channel closes when the job is canceled (or the
// manager shuts down) and whose Progress(done, total) feeds the polled
// completion fraction. Runners are expected to check Canceled() between
// units of work — for batch query jobs, between positional items — so a
// DELETE lands within one item's latency.
package jobs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Submission and lookup errors.
var (
	// ErrClosed reports a Submit against a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrTableFull reports that the job table holds MaxJobs live jobs.
	ErrTableFull = errors.New("jobs: job table full of live jobs; retry later")
	// ErrCanceled is the terminal error of a canceled job.
	ErrCanceled = errors.New("jobs: job canceled")
)

// State is a job's lifecycle position.
type State int

const (
	// StateQueued: submitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is executing the run function.
	StateRunning
	// StateDone: finished successfully; the result is available until TTL
	// eviction.
	StateDone
	// StateFailed: the run function returned an error.
	StateFailed
	// StateCanceled: canceled before completing (or the manager closed).
	StateCanceled
)

// String returns the lower-case state name used on the REST surface.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config tunes a Manager. The zero value is usable.
type Config struct {
	// Workers bounds concurrent job executions (default 2).
	Workers int
	// MaxJobs bounds the job table: live (queued+running) plus retained
	// terminal jobs (default 1024).
	MaxJobs int
	// TTL is how long terminal jobs stay pollable before eviction
	// (default 10 minutes; negative retains until the table needs room).
	TTL time.Duration
}

// Context is handed to a job's run function — the PR 2 hook shape.
type Context struct {
	// Cancel closes when the job is canceled or the manager shuts down;
	// identical contract to onex.Options.Cancel.
	Cancel <-chan struct{}
	job    *Job
}

// Progress records completed/total work units for polling clients. Calls
// are cheap (two atomic stores).
func (c *Context) Progress(done, total int) {
	c.job.progressDone.Store(int64(done))
	c.job.progressTotal.Store(int64(total))
}

// Canceled reports whether the job's Cancel channel has closed.
// JobID returns the running job's table id (observability labels: the API
// layer tags slow-query entries from async jobs with it).
func (c *Context) JobID() string { return c.job.id }

func (c *Context) Canceled() bool {
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// Job is one submitted work item. All fields are private; read through
// Snapshot.
type Job struct {
	id      string
	op      string
	dataset string
	created time.Time

	progressDone  atomic.Int64
	progressTotal atomic.Int64

	cancel     chan struct{}
	cancelOnce sync.Once

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   any
	err      error

	run func(*Context) (any, error)
}

// ID returns the job's table key.
func (j *Job) ID() string { return j.id }

// Snapshot is a point-in-time description of a job, shaped for JSON.
type Snapshot struct {
	ID      string `json:"id"`
	Op      string `json:"op"`
	Dataset string `json:"dataset,omitempty"`
	State   string `json:"state"`
	// Progress is the completion fraction in [0,1] (1 when terminal and
	// successful; whatever was last reported otherwise).
	Progress float64 `json:"progress"`
	// Done/Total are the raw progress counters (batch items for query
	// jobs).
	Done  int `json:"done"`
	Total int `json:"total"`

	CreatedAt  time.Time  `json:"createdAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`

	// Result is the run function's return value; only set when State is
	// "done".
	Result any `json:"result,omitempty"`
	// Err is the terminal error (failed/canceled), nil otherwise.
	Err error `json:"-"`
}

// Snapshot captures the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	st := j.state
	started, finished := j.started, j.finished
	result, err := j.result, j.err
	j.mu.Unlock()

	s := Snapshot{
		ID:        j.id,
		Op:        j.op,
		Dataset:   j.dataset,
		State:     st.String(),
		Done:      int(j.progressDone.Load()),
		Total:     int(j.progressTotal.Load()),
		CreatedAt: j.created,
	}
	if s.Total > 0 {
		s.Progress = float64(s.Done) / float64(s.Total)
	}
	if st == StateDone {
		s.Progress = 1
		s.Result = result
	}
	if st == StateFailed || st == StateCanceled {
		s.Err = err
	}
	if !started.IsZero() {
		s.StartedAt = &started
	}
	if !finished.IsZero() {
		s.FinishedAt = &finished
	}
	return s
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Stats aggregates a manager's lifetime counters.
type Stats struct {
	// Submitted counts accepted Submit calls; Rejected counts ErrTableFull
	// refusals.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// Done/Failed/Canceled count terminal transitions; Evicted counts
	// TTL/room evictions of terminal jobs.
	Done     uint64 `json:"done"`
	Failed   uint64 `json:"failed"`
	Canceled uint64 `json:"canceled"`
	Evicted  uint64 `json:"evicted"`
	// ByState counts the jobs currently in the table.
	ByState map[string]int `json:"byState"`
}

// Manager owns the job table and worker pool. All methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	table map[string]*Job
	seq   uint64

	queue     chan *Job
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	submitted, rejected                   atomic.Uint64
	doneCount, failedCount, canceledCount atomic.Uint64
	evicted                               atomic.Uint64

	// now is a test hook for TTL eviction.
	now func() time.Time
}

// NewManager starts a manager with cfg's worker pool running.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.TTL == 0 {
		cfg.TTL = 10 * time.Minute
	}
	m := &Manager{
		cfg:    cfg,
		table:  make(map[string]*Job),
		queue:  make(chan *Job, cfg.MaxJobs),
		closed: make(chan struct{}),
		now:    time.Now,
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.closed:
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// execute runs one job to a terminal state on a worker goroutine.
func (m *Manager) execute(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.now()
	run := j.run
	j.run = nil // release the closure (and anything it captures) when done
	j.mu.Unlock()

	ctx := &Context{Cancel: j.cancel, job: j}
	result, err := run(ctx)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCanceled {
		// Cancel (or Close) landed while running: the cancel request wins
		// whatever the run function managed to return, so DELETE has
		// deterministic semantics. finished was already stamped by cancel.
		return
	}
	j.finished = m.now()
	switch {
	case err != nil && errors.Is(err, ErrCanceled):
		j.state = StateCanceled
		j.err = ErrCanceled
		m.canceledCount.Add(1)
	case err != nil:
		j.state = StateFailed
		j.err = err
		m.failedCount.Add(1)
	default:
		j.state = StateDone
		j.result = result
		m.doneCount.Add(1)
	}
}

// Submit queues run as a new job. op and dataset are labels carried into
// snapshots (the REST layer uses the query family and dataset name).
func (m *Manager) Submit(op, dataset string, run func(*Context) (any, error)) (*Job, error) {
	if m.isClosed() {
		return nil, ErrClosed
	}
	m.mu.Lock()
	m.expireLocked(true)
	if len(m.table) >= m.cfg.MaxJobs {
		m.mu.Unlock()
		m.rejected.Add(1)
		return nil, ErrTableFull
	}
	m.seq++
	j := &Job{
		// splitmix-style id: unique per manager, not guessable from the
		// previous one, stable length.
		id:      fmt.Sprintf("j-%016x", mix(m.seq)^uint64(m.now().UnixNano())),
		op:      op,
		dataset: dataset,
		created: m.now(),
		cancel:  make(chan struct{}),
		state:   StateQueued,
		run:     run,
	}
	m.table[j.id] = j
	m.mu.Unlock()
	m.submitted.Add(1)

	select {
	case m.queue <- j:
		if m.isClosed() {
			m.cancelJob(j) // close raced the enqueue; ensure terminal state
		}
	case <-m.closed:
		m.cancelJob(j)
	}
	return j, nil
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get returns the job by id. TTL-evicted (and never-submitted) ids report
// false — poll-after-eviction is indistinguishable from not-found by
// design; clients must fetch results within the TTL.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	m.expireLocked(false)
	j, ok := m.table[id]
	m.mu.Unlock()
	return j, ok
}

// Cancel requests cancellation: a queued job goes terminal immediately, a
// running job's Context.Cancel closes (the runner notices between work
// units) and the job is marked canceled, a terminal job is left untouched.
// The second return is false when id is unknown (or already evicted).
func (m *Manager) Cancel(id string) (*Job, bool) {
	j, ok := m.Get(id)
	if !ok {
		return nil, false
	}
	m.cancelJob(j)
	return j, true
}

// cancelJob transitions j to canceled unless it is already terminal.
func (m *Manager) cancelJob(j *Job) {
	j.cancelOnce.Do(func() { close(j.cancel) })
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = StateCanceled
		j.err = ErrCanceled
		j.finished = m.now()
		j.run = nil
		m.canceledCount.Add(1)
	}
	j.mu.Unlock()
}

// List returns every job in the table, newest first.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	m.expireLocked(false)
	out := make([]*Job, 0, len(m.table))
	for _, j := range m.table {
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].created.Equal(out[b].created) {
			return out[a].created.After(out[b].created)
		}
		return out[a].id < out[b].id
	})
	return out
}

// expireLocked drops terminal jobs past their TTL. When makeRoom is also
// set (Submit only), it additionally evicts the oldest-finished terminal
// jobs until the table has room, so live work is only ever refused when
// MaxJobs jobs are actually queued or running. Get/List/Stats must NOT pass
// makeRoom: polling a full-but-retained table would otherwise evict results
// clients are about to fetch. Callers hold m.mu.
func (m *Manager) expireLocked(makeRoom bool) {
	now := m.now()
	type victim struct {
		id       string
		finished time.Time
	}
	var terminal []victim
	for id, j := range m.table {
		j.mu.Lock()
		st, fin := j.state, j.finished
		j.mu.Unlock()
		if !st.Terminal() {
			continue
		}
		if m.cfg.TTL >= 0 && now.Sub(fin) > m.cfg.TTL {
			delete(m.table, id)
			m.evicted.Add(1)
			continue
		}
		terminal = append(terminal, victim{id, fin})
	}
	if !makeRoom || len(m.table) < m.cfg.MaxJobs {
		return
	}
	sort.Slice(terminal, func(a, b int) bool { return terminal[a].finished.Before(terminal[b].finished) })
	for _, v := range terminal {
		if len(m.table) < m.cfg.MaxJobs {
			break
		}
		delete(m.table, v.id)
		m.evicted.Add(1)
	}
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Submitted: m.submitted.Load(),
		Rejected:  m.rejected.Load(),
		Done:      m.doneCount.Load(),
		Failed:    m.failedCount.Load(),
		Canceled:  m.canceledCount.Load(),
		Evicted:   m.evicted.Load(),
		ByState:   make(map[string]int),
	}
	m.mu.Lock()
	for _, j := range m.table {
		j.mu.Lock()
		st.ByState[j.state.String()]++
		j.mu.Unlock()
	}
	m.mu.Unlock()
	return st
}

// Close cancels every live job (running jobs observe their Cancel channel),
// stops the workers and rejects further submissions. It returns once the
// workers have exited; results of already-finished jobs remain pollable by
// callers holding *Job pointers, but the manager should be considered gone.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.mu.Lock()
		live := make([]*Job, 0, len(m.table))
		for _, j := range m.table {
			live = append(live, j)
		}
		m.mu.Unlock()
		for _, j := range live {
			m.cancelJob(j)
		}
		close(m.closed)
		m.wg.Wait()
		// Drain whatever the workers never picked up (all already canceled
		// above, or canceled here if Submit raced Close).
	drain:
		for {
			select {
			case j := <-m.queue:
				m.cancelJob(j)
			default:
				break drain
			}
		}
	})
}

func (m *Manager) isClosed() bool {
	select {
	case <-m.closed:
		return true
	default:
		return false
	}
}
