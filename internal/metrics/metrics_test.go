package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},             // 1024µs ≤ 2^10 µs
		{time.Second, 20},                  // 1e6 µs ≤ 2^20 µs
		{10 * time.Minute, numBuckets - 1}, // saturates
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h Histogram
	// 100 observations spread over four decades.
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 40; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(30 * time.Millisecond)
	}
	h.Observe(2 * time.Second)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if !(s.P50Millis <= s.P90Millis && s.P90Millis <= s.P99Millis) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	// p50 must land in the 100µs bucket's neighbourhood, p99 in the 30ms
	// one — log-bucket estimates are within a factor of ~2.
	if s.P50Millis < 0.05 || s.P50Millis > 0.2 {
		t.Errorf("p50 = %vms, want ≈ 0.1ms", s.P50Millis)
	}
	if s.P99Millis < 15 || s.P99Millis > 60 {
		t.Errorf("p99 = %vms, want ≈ 30ms", s.P99Millis)
	}
	// Exact mean: (50*0.1 + 40*2 + 9*30 + 2000) / 100 = 23.55ms.
	if math.Abs(s.MeanMillis-23.55) > 1e-9 {
		t.Errorf("mean = %vms, want 23.55ms", s.MeanMillis)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99Millis != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	names := []string{"a", "b", "c"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(names[(w+i)%len(names)], time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != len(names) {
		t.Fatalf("registry has %d entries, want %d", len(snap), len(names))
	}
	var total uint64
	for _, s := range snap {
		total += s.Count
	}
	if total != 8*500 {
		t.Fatalf("total observations %d, want %d", total, 8*500)
	}
	if r.Get("missing") != nil {
		t.Fatal("Get(missing) should be nil")
	}
}
