package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},             // 1024µs ≤ 2^10 µs
		{time.Second, 20},                  // 1e6 µs ≤ 2^20 µs
		{10 * time.Minute, numBuckets - 1}, // saturates
		// Exact power-of-two boundaries: the bound itself stays in its
		// bucket, one nanosecond over spills into the next.
		{bucketUpper(5), 5},
		{bucketUpper(5) + 1, 6},
		{bucketUpper(10), 10},
		{bucketUpper(10) + 1, 11},
		// Saturation boundary: the last finite bound and everything past
		// it land in the final bucket.
		{bucketUpper(numBuckets - 2), numBuckets - 2},
		{bucketUpper(numBuckets-2) + 1, numBuckets - 1},
		{bucketUpper(numBuckets - 1), numBuckets - 1},
		{bucketUpper(numBuckets-1) + 1, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestQuantileOrdering(t *testing.T) {
	var h Histogram
	// 100 observations spread over four decades.
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 40; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(30 * time.Millisecond)
	}
	h.Observe(2 * time.Second)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if !(s.P50Millis <= s.P90Millis && s.P90Millis <= s.P99Millis) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	// p50 must land in the 100µs bucket's neighbourhood, p99 in the 30ms
	// one — log-bucket estimates are within a factor of ~2.
	if s.P50Millis < 0.05 || s.P50Millis > 0.2 {
		t.Errorf("p50 = %vms, want ≈ 0.1ms", s.P50Millis)
	}
	if s.P99Millis < 15 || s.P99Millis > 60 {
		t.Errorf("p99 = %vms, want ≈ 30ms", s.P99Millis)
	}
	// Exact mean: (50*0.1 + 40*2 + 9*30 + 2000) / 100 = 23.55ms.
	if math.Abs(s.MeanMillis-23.55) > 1e-9 {
		t.Errorf("mean = %vms, want 23.55ms", s.MeanMillis)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if s := h.Snapshot(); s.Count != 0 || s.P99Millis != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestSingleObservationQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond) // bucket 7: (64µs, 128µs]
	lo, hi := 64*time.Microsecond, 128*time.Microsecond
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got <= lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want in (%v, %v]", q, got, lo, hi)
		}
	}
	// With one observation every quantile is the same bucket midpoint.
	if h.Quantile(0.01) != h.Quantile(1) {
		t.Errorf("single-observation quantiles differ: %v vs %v", h.Quantile(0.01), h.Quantile(1))
	}
	if s := h.Snapshot(); s.Count != 1 || s.MeanMillis != 0.1 {
		t.Errorf("snapshot = %+v, want count 1 mean 0.1ms", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 30; i++ {
		b.Observe(10 * time.Millisecond)
	}
	b.Observe(2 * time.Second)

	a.Merge(&b)
	if got := a.count.Load(); got != 41 {
		t.Fatalf("merged count = %d, want 41", got)
	}
	wantSum := int64(10*100*time.Microsecond + 30*10*time.Millisecond + 2*time.Second)
	if got := a.sumNano.Load(); got != wantSum {
		t.Fatalf("merged sum = %d, want %d", got, wantSum)
	}
	// Bucket mass must be additive: b's observations dominate, so the
	// merged p50 sits in the 10ms bucket's neighbourhood.
	if p50 := a.Quantile(0.5); p50 < 5*time.Millisecond || p50 > 20*time.Millisecond {
		t.Fatalf("merged p50 = %v, want ≈ 10ms", p50)
	}
	// b is untouched and a nil merge is a no-op.
	if b.count.Load() != 31 {
		t.Fatalf("merge mutated source: count = %d", b.count.Load())
	}
	a.Merge(nil)
	if a.count.Load() != 41 {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

func TestRegistryEachSorted(t *testing.T) {
	var r Registry
	r.Observe("b", time.Millisecond)
	r.Observe("a", time.Millisecond)
	r.Observe("c", time.Millisecond)
	var names []string
	r.Each(func(name string, h *Histogram) {
		if h == nil {
			t.Fatalf("nil histogram for %q", name)
		}
		names = append(names, name)
	})
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Each order = %v, want [a b c]", names)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	names := []string{"a", "b", "c"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(names[(w+i)%len(names)], time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap) != len(names) {
		t.Fatalf("registry has %d entries, want %d", len(snap), len(names))
	}
	var total uint64
	for _, s := range snap {
		total += s.Count
	}
	if total != 8*500 {
		t.Fatalf("total observations %d, want %d", total, 8*500)
	}
	if r.Get("missing") != nil {
		t.Fatal("Get(missing) should be nil")
	}
}
