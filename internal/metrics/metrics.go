// Package metrics provides the serving-path observability primitives of
// onex-server: lock-free log-bucketed latency histograms with quantile
// estimation, grouped into a per-endpoint registry that /v1/stats snapshots.
//
// The histogram trades exactness for zero allocation and wait-free
// recording on the hot path: durations land in geometrically spaced buckets
// (factor 2 from 1µs up), so a reported quantile is the geometric midpoint
// of its bucket — at most ~41% relative error, constant memory, and safe
// under any number of concurrent writers. That is the right trade for
// per-request serving latencies, where the interesting signal is orders of
// magnitude (cache hit vs exact DTW scan vs cold build), not microseconds.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// bucketBase is the upper bound of bucket 0; each later bucket doubles it.
const bucketBase = time.Microsecond

// numBuckets covers 1µs .. ~67s (2^26 µs); slower observations saturate
// into the final bucket.
const numBuckets = 27

// Histogram is a fixed-size log-bucketed latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNano atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	// ceil(log2(d/base)): the bucket whose upper bound first covers d.
	idx := 64 - bits.LeadingZeros64(uint64((d-1)/bucketBase))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(d))
}

// bucketUpper returns bucket i's upper bound.
func bucketUpper(i int) time.Duration { return bucketBase << uint(i) }

// Merge adds o's observations into h — used to aggregate per-route
// histograms into a whole-server series. Loads and adds are per-bucket
// atomic, so concurrent Observes are never lost, though a merge racing
// writers may see a slightly torn cross-bucket view (fine for exposition).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNano.Add(o.sumNano.Load())
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the geometric
// midpoint of the bucket holding the q-th observation. It returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			upper := float64(bucketUpper(i))
			lower := float64(0)
			if i > 0 {
				lower = float64(bucketUpper(i - 1))
			} else {
				lower = upper / 2
			}
			return time.Duration(math.Sqrt(lower * upper))
		}
	}
	return bucketUpper(numBuckets - 1)
}

// Snapshot is a point-in-time summary of a histogram, shaped for JSON.
type Snapshot struct {
	Count uint64 `json:"count"`
	// MeanMillis is exact (running sum), the quantiles are log-bucket
	// estimates (geometric bucket midpoints; ≤ ~41% relative error).
	MeanMillis float64 `json:"meanMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	n := h.count.Load()
	s := Snapshot{Count: n}
	if n == 0 {
		return s
	}
	s.MeanMillis = float64(h.sumNano.Load()) / float64(n) / 1e6
	s.P50Millis = float64(h.Quantile(0.50)) / 1e6
	s.P90Millis = float64(h.Quantile(0.90)) / 1e6
	s.P99Millis = float64(h.Quantile(0.99)) / 1e6
	return s
}

// Registry is a concurrent name → Histogram map (one histogram per
// endpoint). The zero value is ready to use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// Observe records d under name, creating the histogram on first use.
func (r *Registry) Observe(name string, d time.Duration) {
	r.mu.RLock()
	h := r.m[name]
	r.mu.RUnlock()
	if h == nil {
		r.mu.Lock()
		if r.m == nil {
			r.m = make(map[string]*Histogram)
		}
		if h = r.m[name]; h == nil {
			h = &Histogram{}
			r.m[name] = h
		}
		r.mu.Unlock()
	}
	h.Observe(d)
}

// Get returns the named histogram (nil if never observed).
func (r *Registry) Get(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[name]
}

// Each calls f for every histogram in sorted name order. The *Histogram
// handles stay live (atomics), so f may read without further locking.
func (r *Registry) Each(f func(name string, h *Histogram)) {
	r.mu.RLock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		if h := r.Get(name); h != nil {
			f(name, h)
		}
	}
}

// Snapshot summarizes every histogram, keyed by name.
func (r *Registry) Snapshot() map[string]Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	out := make(map[string]Snapshot, len(names))
	for _, name := range names {
		if h := r.Get(name); h != nil {
			out[name] = h.Snapshot()
		}
	}
	return out
}
