package metrics

import "sync"

// CounterMap is a small labeled counter family: a mutex-guarded map from a
// comparable label key to a monotone count. It complements Histogram for
// the low-rate exposition counters (op×status, ship outcomes, request
// totals) where a mutex is cheaper than per-key atomics and the key space
// is tiny. The zero value is ready to use; all methods are safe for
// concurrent use.
type CounterMap[K comparable] struct {
	mu sync.Mutex
	m  map[K]uint64
}

// Add increments key by one.
func (c *CounterMap[K]) Add(key K) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *CounterMap[K]) AddN(key K, n uint64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]uint64, 8)
	}
	c.m[key] += n
	c.mu.Unlock()
}

// Snapshot returns a copy of the current counts.
func (c *CounterMap[K]) Snapshot() map[K]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[K]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
