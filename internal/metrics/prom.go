package metrics

// Hand-rolled Prometheus text exposition (format 0.0.4) — no client
// library dependency. GET /metrics renders the per-route latency
// histograms as native Prometheus histograms whose `le` bounds are this
// package's log-bucket upper bounds in seconds, plus whatever counters and
// gauges the server layers on top.
//
// Invariants the writer guarantees (and the obs smoke test asserts):
// cumulative _bucket series are monotone in le, the +Inf bucket equals
// _count, and every sample is written from one bucket snapshot so a race
// with concurrent Observes can never produce a decreasing series.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// PromWriter renders metric families in the text exposition format. Errors
// are sticky: check Err once after writing everything.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w for exposition writing.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the # HELP / # TYPE preamble of a metric family. Call once
// per family, before its samples. typ is "counter", "gauge" or
// "histogram".
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one counter/gauge sample line.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

// Hist emits one histogram series (cumulative _bucket/_sum/_count) from a
// log-bucketed latency histogram. Bucket counts are loaded once into a
// local snapshot; _count and the +Inf bucket are the snapshot's total, so
// the series is internally consistent even under concurrent writers.
func (p *PromWriter) Hist(name string, labels []Label, h *Histogram) {
	var counts [numBuckets]uint64
	var total uint64
	for i := 0; i < numBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(bucketUpper(i).Seconds(), 'g', -1, 64)
		p.printf("%s_bucket%s %d\n", name, formatLabels(withLe(labels, le)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, formatLabels(withLe(labels, "+Inf")), total)
	p.printf("%s_sum%s %s\n", name, formatLabels(labels),
		formatFloat(time.Duration(h.sumNano.Load()).Seconds()))
	p.printf("%s_count%s %d\n", name, formatLabels(labels), total)
}

func withLe(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Name: "le", Value: le})
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
