package metrics

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromHistExposition(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(10 * time.Millisecond)
	h.Observe(2 * time.Second)

	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Header("onex_http_request_duration_seconds", "Latency by route.", "histogram")
	p.Hist("onex_http_request_duration_seconds", []Label{{Name: "route", Value: "/v1/x"}}, &h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.Contains(out, "# TYPE onex_http_request_duration_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}

	// Parse the bucket series: cumulative counts must be monotone, le
	// bounds ascending, +Inf bucket equal to _count.
	var lastCum uint64
	var lastLe float64
	var infCum, count uint64
	buckets := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "onex_http_request_duration_seconds_bucket{"):
			fields := strings.Fields(line)
			cum, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			if cum < lastCum {
				t.Fatalf("bucket series not monotone at %q (prev %d)", line, lastCum)
			}
			lastCum = cum
			leStr := line[strings.Index(line, `le="`)+4:]
			leStr = leStr[:strings.Index(leStr, `"`)]
			if leStr == "+Inf" {
				infCum = cum
			} else {
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("bad le in %q: %v", line, err)
				}
				if le <= lastLe {
					t.Fatalf("le bounds not ascending at %q", line)
				}
				lastLe = le
			}
			if !strings.Contains(line, `route="/v1/x"`) {
				t.Fatalf("bucket line lost the route label: %q", line)
			}
			buckets++
		case strings.HasPrefix(line, "onex_http_request_duration_seconds_count{"):
			n, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = n
		}
	}
	if buckets != numBuckets+1 {
		t.Fatalf("emitted %d bucket lines, want %d", buckets, numBuckets+1)
	}
	if count != 4 || infCum != count {
		t.Fatalf("+Inf bucket %d vs _count %d, want both 4", infCum, count)
	}
	// _sum is the exact running sum in seconds.
	if !strings.Contains(out, `onex_http_request_duration_seconds_sum{route="/v1/x"} 2.0102`) {
		t.Fatalf("missing/incorrect _sum line:\n%s", out)
	}
}

func TestPromSampleAndEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Header("onex_cache_hits_total", `Hits with "quotes" and \slashes`, "counter")
	p.Sample("onex_cache_hits_total", []Label{{Name: "dataset", Value: `we"ird\name` + "\n"}}, 42)
	p.Sample("onex_up", nil, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP onex_cache_hits_total Hits with "quotes" and \\slashes`) {
		t.Fatalf("HELP escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `onex_cache_hits_total{dataset="we\"ird\\name\n"} 42`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "onex_up 1\n") {
		t.Fatalf("unlabeled sample wrong:\n%s", out)
	}
}
