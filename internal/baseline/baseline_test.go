package baseline

import (
	"math"
	"testing"

	"onex/internal/dataset"
	"onex/internal/dist"
	"onex/internal/ts"
)

func testData(t *testing.T) *ts.Dataset {
	t.Helper()
	d := dataset.ItalyPower.Scaled(0.3).Generate(12)
	if err := d.NormalizeMinMax(); err != nil {
		t.Fatal(err)
	}
	return d
}

// naiveBest is an independent exhaustive search with no early abandoning.
func naiveBest(d *ts.Dataset, q []float64, lengths []int) Match {
	var ws dist.Workspace
	best := Match{Dist: math.Inf(1)}
	for _, l := range lengths {
		div := dist.NormalizedDTWDivisor(len(q), l)
		for _, s := range d.Series {
			for j := 0; j+l <= s.Len(); j++ {
				raw := ws.DTW(q, s.Values[j:j+l])
				if nd := raw / div; nd < best.Dist {
					best = Match{SeriesID: s.ID, Start: j, Length: l, Dist: nd, RawDTW: raw}
				}
			}
		}
	}
	return best
}

func TestNewBruteForceValidation(t *testing.T) {
	if _, err := NewBruteForce(nil); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := NewBruteForce(&ts.Dataset{}); err == nil {
		t.Error("empty dataset: want error")
	}
}

func TestBruteForceMatchesNaive(t *testing.T) {
	d := testData(t)
	bf, err := NewBruteForce(d)
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{5, 9}
	for qi := 0; qi < 5; qi++ {
		q := append([]float64(nil), d.Series[qi].Values[qi:qi+9]...)
		q[qi%9] += 0.1 // push out of dataset
		got, err := bf.BestMatch(q, lengths)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveBest(d, q, lengths)
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("query %d: bruteforce %v != naive %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestBruteForceInDatasetQueryIsZero(t *testing.T) {
	d := testData(t)
	bf, _ := NewBruteForce(d)
	q := append([]float64(nil), d.Series[3].Values[2:10]...)
	m, err := bf.BestMatchSameLength(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-12 {
		t.Errorf("in-dataset query dist = %v, want 0", m.Dist)
	}
	if m.Length != 8 {
		t.Errorf("length = %d, want 8", m.Length)
	}
}

func TestBruteForceErrors(t *testing.T) {
	d := testData(t)
	bf, _ := NewBruteForce(d)
	if _, err := bf.BestMatch(nil, []int{4}); err == nil {
		t.Error("empty query: want error")
	}
	if _, err := bf.BestMatch([]float64{math.Inf(1)}, []int{4}); err == nil {
		t.Error("Inf query: want error")
	}
	if _, err := bf.BestMatch([]float64{1, 2}, []int{-1}); err == nil {
		t.Error("bad length: want error")
	}
	if _, err := bf.BestMatch([]float64{1, 2}, []int{10_000}); err == nil {
		t.Error("too-long length: want error")
	}
}

func TestBruteForceNilLengthsScansAll(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{0, 0.5, 1, 0.5, 0}})
	bf, _ := NewBruteForce(d)
	q := []float64{0.5, 1, 0.5}
	m, err := bf.BestMatch(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-12 {
		t.Errorf("dist = %v, want exact 0 (q is a subsequence)", m.Dist)
	}
}

func TestReduce(t *testing.T) {
	got := Reduce(nil, []float64{1, 3, 2, 4, 10}, 2)
	want := []float64{2, 3, 10} // frames (1,3),(2,4),(10)
	if len(got) != len(want) {
		t.Fatalf("Reduce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reduce = %v, want %v", got, want)
		}
	}
}

func TestReducedDim(t *testing.T) {
	cases := [][3]int{{8, 2, 4}, {9, 2, 5}, {5, 8, 1}, {16, 8, 2}}
	for _, c := range cases {
		if got := reducedDim(c[0], c[1]); got != c[2] {
			t.Errorf("reducedDim(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestNewPAAValidation(t *testing.T) {
	d := testData(t)
	if _, err := NewPAA(nil, []int{4}, 2); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := NewPAA(d, []int{4}, -3); err == nil {
		t.Error("negative compression: want error")
	}
	if _, err := NewPAA(d, []int{0}, 2); err == nil {
		t.Error("invalid length: want error")
	}
	if _, err := NewPAA(d, []int{10_000}, 2); err == nil {
		t.Error("no candidates: want error")
	}
}

func TestPAAFindsReasonableMatch(t *testing.T) {
	d := testData(t)
	p, err := NewPAA(d, []int{8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := NewBruteForce(d)
	q := append([]float64(nil), d.Series[5].Values[4:12]...)
	got, err := p.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := bf.BestMatch(q, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist < exact.Dist-1e-9 {
		t.Fatalf("PAA %v better than exact %v (impossible)", got.Dist, exact.Dist)
	}
	// PDTW is approximate but must stay in the neighbourhood of the truth.
	if got.Dist > exact.Dist+0.2 {
		t.Errorf("PAA dist %v far from exact %v", got.Dist, exact.Dist)
	}
	// The reported distance must be reproducible from the location.
	v := d.Series[got.SeriesID].Values[got.Start : got.Start+got.Length]
	if math.Abs(dist.NormalizedDTW(q, v)-got.Dist) > 1e-9 {
		t.Error("PAA reported dist does not match its location")
	}
}

func TestPAACompressionOneIsNearExact(t *testing.T) {
	// With compression 1 the reduced space is the original space, so PDTW
	// degenerates to the exact same-length scan.
	d := testData(t)
	p, err := NewPAA(d, []int{6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := NewBruteForce(d)
	q := append([]float64(nil), d.Series[2].Values[3:9]...)
	q[0] += 0.07
	got, _ := p.BestMatch(q)
	exact, _ := bf.BestMatch(q, []int{6})
	if math.Abs(got.Dist-exact.Dist) > 1e-9 {
		t.Errorf("compression-1 PAA %v != exact %v", got.Dist, exact.Dist)
	}
}

func TestPAADefaultCompression(t *testing.T) {
	d := testData(t)
	p, err := NewPAA(d, []int{16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.compression != DefaultCompression {
		t.Errorf("compression = %d, want %d", p.compression, DefaultCompression)
	}
}

func TestNewTrillionValidation(t *testing.T) {
	d := testData(t)
	if _, err := NewTrillion(nil, TrillionConfig{}); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := NewTrillion(d, TrillionConfig{WindowFrac: -0.5}); err == nil {
		t.Error("negative window: want error")
	}
	tr, err := NewTrillion(d, TrillionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.cfg.WindowFrac != DefaultWindowFrac {
		t.Errorf("default window frac = %v", tr.cfg.WindowFrac)
	}
}

func TestTrillionExactInRawUnconstrainedMode(t *testing.T) {
	// With z-normalization off and the band disabled the cascade must be
	// fully admissible: Trillion's result equals brute force exactly.
	d := testData(t)
	tr, err := NewTrillion(d, TrillionConfig{WindowFrac: 1, RawSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := NewBruteForce(d)
	for qi := 0; qi < 5; qi++ {
		q := append([]float64(nil), d.Series[qi*2].Values[qi:qi+10]...)
		q[qi] += 0.05 * float64(qi+1)
		got, err := tr.BestMatch(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bf.BestMatchSameLength(q)
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("query %d: trillion %v != bruteforce %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestTrillionInDatasetQuery(t *testing.T) {
	// A window copied verbatim from the data is its own best z-normalized
	// match, so Trillion finds a perfect (distance-0) answer.
	d := testData(t)
	tr, _ := NewTrillion(d, TrillionConfig{})
	q := append([]float64(nil), d.Series[7].Values[3:13]...)
	m, err := tr.BestMatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist > 1e-9 {
		t.Errorf("in-dataset query dist = %v, want 0", m.Dist)
	}
}

func TestTrillionQueryLongerThanSeries(t *testing.T) {
	d := ts.NewDataset("t", [][]float64{{1, 2, 3}})
	tr, _ := NewTrillion(d, TrillionConfig{})
	if _, err := tr.BestMatch(make([]float64, 10)); err == nil {
		t.Error("over-long query: want error")
	}
}

func TestTrillionConstantWindows(t *testing.T) {
	// Zero-variance windows must not produce NaNs.
	d := ts.NewDataset("t", [][]float64{{5, 5, 5, 5, 5, 5}})
	tr, _ := NewTrillion(d, TrillionConfig{})
	m, err := tr.BestMatch([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Dist) {
		t.Error("constant-window search produced NaN")
	}
}

func TestTrillionZNormChangesSpace(t *testing.T) {
	// A query that is a scaled+offset copy of a window matches it perfectly
	// in z-space but not in raw space — the mechanism behind Trillion's
	// accuracy drop on out-of-dataset queries (Sec. 6.2.1).
	base := []float64{0, 1, 0, 2, 0, 1, 0}
	shifted := make([]float64, len(base))
	for i, v := range base {
		shifted[i] = 3*v + 10
	}
	d := ts.NewDataset("t", [][]float64{base, {9, 9, 9, 9, 9, 9, 9}})
	tr, _ := NewTrillion(d, TrillionConfig{WindowFrac: 1})
	m, err := tr.BestMatch(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if m.SeriesID != 0 || m.Start != 0 {
		t.Errorf("z-norm search picked %d/%d, want the shape-identical window 0/0", m.SeriesID, m.Start)
	}
	if m.Dist < 1 {
		t.Errorf("raw-space distance should be large, got %v", m.Dist)
	}
}
