// Package baseline implements the three comparison systems of the paper's
// evaluation (Sec. 6.1):
//
//   - BruteForce: the "Standard DTW" exact search computing (early-abandoned
//     but admissible) DTW against every candidate subsequence; it doubles as
//     the accuracy ground truth.
//   - PAA: the Keogh & Pazzani PDTW approximation [19] — DTW evaluated over
//     piecewise-aggregate-reduced series.
//   - Trillion: the UCR-suite searcher [22] — same-length sliding-window
//     search with the LB_KimFL → LB_Keogh cascade, query reordering, and
//     early abandoning.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"onex/internal/dist"
	"onex/internal/ts"
)

// Match locates a returned subsequence. Dist is the normalized DTW (Def. 6)
// between the query and the match measured in the dataset's own value space
// — the quantity the paper's accuracy metric compares across systems.
type Match struct {
	SeriesID, Start, Length int
	Dist                    float64
	// RawDTW is the unnormalized Def. 3 distance in data space.
	RawDTW float64
}

// Found reports whether the match is populated.
func (m Match) Found() bool { return m.Length > 0 }

func validateQuery(q []float64) error {
	if len(q) == 0 {
		return errors.New("baseline: empty query")
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("baseline: non-finite query value at %d", i)
		}
	}
	return nil
}

// BruteForce is the Standard DTW baseline: an exhaustive scan guaranteeing
// the best match. Early abandoning against the best-so-far keeps it usable
// as the ground truth on bench scales without affecting exactness.
type BruteForce struct {
	d *ts.Dataset
}

// NewBruteForce wraps a dataset for exact scanning.
func NewBruteForce(d *ts.Dataset) (*BruteForce, error) {
	if d == nil || d.N() == 0 {
		return nil, errors.New("baseline: empty dataset")
	}
	return &BruteForce{d: d}, nil
}

// Scale normalizes a raw DTW value so matches of different candidate
// lengths are commensurate: the reported distance is rawDTW / Scale(m, n)
// for a length-m query and a length-n candidate.
type Scale func(qLen, cLen int) float64

// Def6Scale is the paper's Def. 6 normalization, 2·max(m,n) — the scale the
// ST/2 retrieval guarantee is stated in.
func Def6Scale(qLen, cLen int) float64 {
	return dist.NormalizedDTWDivisor(qLen, cLen)
}

// PerPointScale is √max(m,n): the scale on which normalized-ED-like
// magnitudes live. The benchmark accuracy metric uses it because Def. 6's
// division by 2n compresses every error toward zero, hiding the accuracy
// differences the paper's Tables 2–3 report (see EXPERIMENTS.md).
func PerPointScale(qLen, cLen int) float64 {
	if cLen > qLen {
		qLen = cLen
	}
	return math.Sqrt(float64(qLen))
}

// BestMatchSameLength returns the exact best match among subsequences of
// the query's own length (normalized DTW).
func (bf *BruteForce) BestMatchSameLength(q []float64) (Match, error) {
	return bf.BestMatch(q, []int{len(q)})
}

// BestMatch returns the exact best match among subsequences of the given
// lengths under the Def. 6 scale. A nil lengths slice scans every length
// from 2 to the longest series — the full Nn(n−1)/2 search the paper calls
// prohibitive; callers should pass the same length set the other systems
// index.
func (bf *BruteForce) BestMatch(q []float64, lengths []int) (Match, error) {
	return bf.BestMatchScale(q, lengths, Def6Scale)
}

// BestMatchScale is BestMatch under a caller-chosen length normalization.
func (bf *BruteForce) BestMatchScale(q []float64, lengths []int, scale Scale) (Match, error) {
	if err := validateQuery(q); err != nil {
		return Match{}, err
	}
	if lengths == nil {
		maxLen := bf.d.MaxLen()
		for l := 2; l <= maxLen; l++ {
			lengths = append(lengths, l)
		}
	}
	// Visit lengths nearest the query's own length first: the closest
	// candidates tend to live there, so the early-abandon cutoff tightens
	// immediately instead of after a long scan of degenerate lengths. The
	// scan stays exact — only the abandon effectiveness changes.
	lengths = append([]int(nil), lengths...)
	sort.Slice(lengths, func(a, b int) bool {
		da, db := lengths[a]-len(q), lengths[b]-len(q)
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		if da != db {
			return da < db
		}
		return lengths[a] < lengths[b]
	})
	var ws dist.Workspace
	best := Match{Dist: math.Inf(1)}
	for _, l := range lengths {
		if l < 1 {
			return Match{}, fmt.Errorf("baseline: invalid length %d", l)
		}
		div := scale(len(q), l)
		// Convert the global normalized best into this length's raw cutoff.
		for _, s := range bf.d.Series {
			for j := 0; j+l <= s.Len(); j++ {
				cutoff := best.Dist * div
				raw := ws.DTWEarlyAbandon(q, s.Values[j:j+l], dist.Unconstrained, cutoff)
				if nd := raw / div; nd < best.Dist {
					best = Match{SeriesID: s.ID, Start: j, Length: l, Dist: nd, RawDTW: raw}
				}
			}
		}
	}
	if !best.Found() {
		return Match{}, errors.New("baseline: no candidate subsequences at the requested lengths")
	}
	return best, nil
}
