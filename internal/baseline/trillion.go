package baseline

import (
	"errors"
	"fmt"
	"math"

	"onex/internal/dist"
	"onex/internal/ts"
)

// TrillionConfig tunes the UCR-suite searcher.
type TrillionConfig struct {
	// WindowFrac is the Sakoe-Chiba band half-width as a fraction of the
	// query length. 0 selects DefaultWindowFrac; values ≥ 1 disable the
	// constraint (full DTW).
	WindowFrac float64
	// RawSpace disables the UCR suite's per-window z-normalization and
	// searches in the dataset's own value space. The suite always
	// z-normalizes; the option exists for the exactness tests and for
	// ablations.
	RawSpace bool
}

// DefaultWindowFrac is the 5% warping band the UCR suite commonly runs with.
const DefaultWindowFrac = 0.05

// Trillion reimplements the search loop of "Searching and Mining Trillions
// of Time Series Subsequences under Dynamic Time Warping" [22]: an exact
// same-length sliding-window search with per-window z-normalization and the
// optimization cascade — query reordering, LB_KimFL, LB_Keogh against the
// query envelope with early abandoning, then early-abandoning constrained
// DTW. Like the original, it can only answer best-match queries of the
// query's own length (Sec. 6.2.2 explains why it is omitted from seasonal
// experiments).
type Trillion struct {
	d   *ts.Dataset
	cfg TrillionConfig
}

// NewTrillion wraps a dataset for UCR-suite search.
func NewTrillion(d *ts.Dataset, cfg TrillionConfig) (*Trillion, error) {
	if d == nil || d.N() == 0 {
		return nil, errors.New("baseline: empty dataset")
	}
	if cfg.WindowFrac < 0 || math.IsNaN(cfg.WindowFrac) {
		return nil, fmt.Errorf("baseline: invalid window fraction %v", cfg.WindowFrac)
	}
	if cfg.WindowFrac == 0 {
		cfg.WindowFrac = DefaultWindowFrac
	}
	return &Trillion{d: d, cfg: cfg}, nil
}

// BestMatch returns the best same-length match for q. The internal search
// score is (z-normalized, band-constrained) DTW per the UCR suite; the
// returned Dist/RawDTW are the full-resolution unconstrained DTW between q
// and the winning window in data space, which is what the paper's accuracy
// metric measures for every system.
func (t *Trillion) BestMatch(q []float64) (Match, error) {
	if err := validateQuery(q); err != nil {
		return Match{}, err
	}
	m := len(q)
	window := dist.Unconstrained
	if t.cfg.WindowFrac < 1 {
		window = int(t.cfg.WindowFrac * float64(m))
	}
	envRadius := m
	if window != dist.Unconstrained {
		envRadius = window
	}

	qn := q
	if !t.cfg.RawSpace {
		qn = ts.ZNormalize(nil, q)
	}
	order := dist.QueryOrder(qn)
	envU, envL := dist.Envelope(qn, envRadius, nil, nil)

	var ws dist.Workspace
	buf := make([]float64, m)
	bsf := math.Inf(1)
	bestSID, bestStart := -1, 0

	var envDU, envDL []float64 // reusable data-envelope buffers
	for _, s := range t.d.Series {
		if s.Len() < m {
			continue
		}
		// Prefix sums for O(1) window mean/std (UCR-suite trick).
		var sums, sqSums []float64
		if !t.cfg.RawSpace {
			sums = make([]float64, s.Len()+1)
			sqSums = make([]float64, s.Len()+1)
			for i, v := range s.Values {
				sums[i+1] = sums[i] + v
				sqSums[i+1] = sqSums[i] + v*v
			}
		}
		// Data-side envelope (LB_Keogh EC): computed once per series on the
		// raw values; per-window z-normalization is affine with positive
		// scale, so it commutes with the min/max envelope and the bound
		// stays admissible after normalizing envelope values on the fly.
		envDU, envDL = dist.Envelope(s.Values, envRadius, envDU, envDL)
		for j := 0; j+m <= s.Len(); j++ {
			win := s.Values[j : j+m]
			var mean, invStd float64
			zero := false
			if !t.cfg.RawSpace {
				n := float64(m)
				mean = (sums[j+m] - sums[j]) / n
				variance := (sqSums[j+m]-sqSums[j])/n - mean*mean
				if variance <= 0 {
					zero = true
				} else {
					invStd = 1 / math.Sqrt(variance)
				}
			}
			norm := func(v float64) float64 {
				if t.cfg.RawSpace {
					return v
				}
				if zero {
					return 0
				}
				return (v - mean) * invStd
			}

			// Cascade step 1: LB_KimFL on the first/last points.
			dF := qn[0] - norm(win[0])
			dL := qn[m-1] - norm(win[m-1])
			if math.Sqrt(dF*dF+dL*dL) >= bsf {
				continue
			}
			// Cascade step 2: LB_Keogh of the candidate against the query
			// envelope, visited in reordered (most-extreme-first) order.
			if lbKeoghCandidate(win, envU, envL, order, norm, bsf) >= bsf {
				continue
			}
			// Cascade step 3: LB_Keogh EC — the query against the data-side
			// envelope of this window.
			if lbKeoghData(qn, envDU[j:j+m], envDL[j:j+m], order, norm, bsf) >= bsf {
				continue
			}
			// Cascade step 4: early-abandoning (constrained) DTW.
			cand := win
			if !t.cfg.RawSpace {
				for i, v := range win {
					buf[i] = norm(v)
				}
				cand = buf
			}
			d := ws.DTWEarlyAbandon(qn, cand, window, bsf)
			if d < bsf {
				bsf = d
				bestSID, bestStart = s.ID, j
			}
		}
	}
	if bestSID < 0 {
		return Match{}, errors.New("baseline: no window as long as the query")
	}
	winBest := t.d.Series[bestSID].Values[bestStart : bestStart+m]
	raw := dist.DTW(q, winBest)
	return Match{
		SeriesID: bestSID,
		Start:    bestStart,
		Length:   m,
		Dist:     raw / dist.NormalizedDTWDivisor(m, m),
		RawDTW:   raw,
	}, nil
}

// lbKeoghData is LB_Keogh with the envelope around the *candidate window*
// (the UCR suite's LB_Keogh EC / lb_keogh2): query points falling outside
// the window's normalized data envelope accumulate squared excursions.
func lbKeoghData(qn, rawU, rawL []float64, order []int, norm func(float64) float64, cutoff float64) float64 {
	cutoffSq := cutoff * cutoff
	var sum float64
	for _, i := range order {
		u, l := norm(rawU[i]), norm(rawL[i])
		v := qn[i]
		if v > u {
			d := v - u
			sum += d * d
		} else if v < l {
			d := l - v
			sum += d * d
		}
		if sum > cutoffSq {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}

// lbKeoghCandidate is LB_Keogh with the envelope around the *query* (the
// UCR suite's LB_Keogh EQ): candidate points falling outside [envL, envU]
// accumulate squared excursions. norm maps raw candidate values into the
// search space lazily so windows pruned here never materialize.
func lbKeoghCandidate(win, envU, envL []float64, order []int, norm func(float64) float64, cutoff float64) float64 {
	cutoffSq := cutoff * cutoff
	var sum float64
	for _, i := range order {
		v := norm(win[i])
		if v > envU[i] {
			d := v - envU[i]
			sum += d * d
		} else if v < envL[i] {
			d := envL[i] - v
			sum += d * d
		}
		if sum > cutoffSq {
			return math.Inf(1)
		}
	}
	return math.Sqrt(sum)
}
