package baseline

import (
	"errors"
	"fmt"
	"math"

	"onex/internal/dist"
	"onex/internal/ts"
)

// PAA is the Keogh & Pazzani PDTW baseline [19]: every candidate
// subsequence is reduced by Piecewise Aggregate Approximation (each frame of
// `compression` consecutive points replaced by its mean) and DTW is
// evaluated in the reduced space. The search is approximate: the winner in
// reduced space need not be the true best match, which is exactly the
// accuracy/time trade-off Table 3 and Fig. 2 report.
type PAA struct {
	d           *ts.Dataset
	compression int
	lengths     []int
	// reduced[li] holds the reduced vectors of all subsequences of
	// lengths[li], flattened; index[li] maps entry → (series, start).
	reduced [][]float64
	index   [][2]int32
	offsets []int // entry ranges per length: entries of lengths[li] are index[offsets[li]:offsets[li+1]]
	rdims   []int // reduced dimension per length
}

// DefaultCompression is the PDTW frame size used when 0 is passed: the
// 1-to-8 compression Keogh & Pazzani report as a good accuracy/speed spot.
const DefaultCompression = 8

// NewPAA precomputes the reduced representation of every subsequence of the
// given lengths (nil = all lengths 2..max, matching BruteForce).
func NewPAA(d *ts.Dataset, lengths []int, compression int) (*PAA, error) {
	if d == nil || d.N() == 0 {
		return nil, errors.New("baseline: empty dataset")
	}
	if compression == 0 {
		compression = DefaultCompression
	}
	if compression < 1 {
		return nil, fmt.Errorf("baseline: invalid PAA compression %d", compression)
	}
	if lengths == nil {
		maxLen := d.MaxLen()
		for l := 2; l <= maxLen; l++ {
			lengths = append(lengths, l)
		}
	}
	p := &PAA{d: d, compression: compression, lengths: lengths}
	p.offsets = make([]int, 0, len(lengths)+1)
	p.offsets = append(p.offsets, 0)
	for _, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("baseline: invalid length %d", l)
		}
		rd := reducedDim(l, compression)
		p.rdims = append(p.rdims, rd)
		var flat []float64
		for _, s := range d.Series {
			for j := 0; j+l <= s.Len(); j++ {
				flat = Reduce(flat, s.Values[j:j+l], compression)
				p.index = append(p.index, [2]int32{int32(s.ID), int32(j)})
			}
		}
		p.reduced = append(p.reduced, flat)
		p.offsets = append(p.offsets, len(p.index))
	}
	if len(p.index) == 0 {
		return nil, errors.New("baseline: no candidate subsequences at the requested lengths")
	}
	return p, nil
}

// reducedDim is ⌈l/compression⌉.
func reducedDim(l, compression int) int {
	return (l + compression - 1) / compression
}

// Reduce appends the PAA reduction of x (frame means, last frame possibly
// short) to dst and returns it.
func Reduce(dst, x []float64, compression int) []float64 {
	for i := 0; i < len(x); i += compression {
		end := i + compression
		if end > len(x) {
			end = len(x)
		}
		var sum float64
		for _, v := range x[i:end] {
			sum += v
		}
		dst = append(dst, sum/float64(end-i))
	}
	return dst
}

// BestMatch returns the candidate whose reduced-space DTW to the reduced
// query is minimal. Dist/RawDTW report the full-resolution DTW between the
// query and that candidate (the value the accuracy metric inspects).
func (p *PAA) BestMatch(q []float64) (Match, error) {
	if err := validateQuery(q); err != nil {
		return Match{}, err
	}
	rq := Reduce(nil, q, p.compression)
	var ws dist.Workspace
	bestScore := math.Inf(1)
	var bestLoc [2]int32
	bestLen := 0
	for li, l := range p.lengths {
		rd := p.rdims[li]
		flat := p.reduced[li]
		div := dist.NormalizedDTWDivisor(len(rq), rd)
		for e := 0; e*rd < len(flat); e++ {
			cand := flat[e*rd : (e+1)*rd]
			raw := ws.DTWEarlyAbandon(rq, cand, dist.Unconstrained, bestScore*div)
			if score := raw / div; score < bestScore {
				bestScore = score
				bestLoc = p.index[p.offsets[li]+e]
				bestLen = l
			}
		}
	}
	if bestLen == 0 {
		return Match{}, errors.New("baseline: PAA found no candidate")
	}
	sid, start := int(bestLoc[0]), int(bestLoc[1])
	v := p.d.Series[sid].Values[start : start+bestLen]
	raw := dist.DTW(q, v)
	return Match{
		SeriesID: sid,
		Start:    start,
		Length:   bestLen,
		Dist:     raw / dist.NormalizedDTWDivisor(len(q), bestLen),
		RawDTW:   raw,
	}, nil
}
