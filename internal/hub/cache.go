package hub

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
)

// CacheStats reports the result cache's effectiveness counters.
type CacheStats struct {
	// Hits and Misses count lookups since the hub started.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries displaced by the LRU bound (explicit
	// invalidations on Extend/Drop are not evictions).
	Evictions uint64 `json:"evictions"`
	// Entries and Capacity are the current and maximum entry counts.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// resultCache is a bounded LRU over materialized query results, shared by
// every dataset of a hub. Keys embed the dataset's generation counter, so a
// swap (Extend, rebuild) makes stale entries unreachable immediately; the
// owning dataset's entries are additionally purged by prefix to free the
// memory right away.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val any
}

// newResultCache returns a cache bounded to capacity entries, or nil (a
// universal miss) when capacity < 0.
func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element, capacity),
	}
}

func (c *resultCache) get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(key string, val any) {
	if c == nil || c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// purgePrefix drops every entry whose key starts with prefix — used to
// invalidate one dataset's results on Extend and Drop.
func (c *resultCache) purgePrefix(prefix string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); strings.HasPrefix(e.key, prefix) {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
		}
		el = next
	}
}

func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{Capacity: -1}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Capacity: c.capacity,
	}
}

// queryKey builds the cache key for one query against one dataset
// registration (epoch, unique per Register so a drop/re-register under the
// same name can never resurrect old results), generation, and shard layout
// (onex.Base.LayoutSignature — the shard count plus each shard's series/
// subsequence population, so the same data re-registered under a different
// Shards value, or re-sharded any other way, can never alias a previous
// incarnation's results even if epochs were ever reused). The dataset name
// (which cannot contain '|') leads so a whole dataset can be invalidated by
// prefix; the parameters are folded into an FNV-1a hash rather than spelled
// out, keeping keys short for long query vectors.
func queryKey(name string, epoch, gen, layout uint64, kind string, ints []int, floats []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range ints {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
		h.Write(b[:])
	}
	for _, v := range floats {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return fmt.Sprintf("%s|%d|%d|%016x|%s|%d|%d|%016x", name, epoch, gen, layout, kind, len(ints), len(floats), h.Sum64())
}

// keyScope carries the identity every cache key embeds: the dataset name,
// its registration epoch, the generation of the base answering, and the
// serving layout signature.
type keyScope struct {
	name       string
	epoch, gen uint64
	layout     uint64
}

// The typed key builders below are the single source of truth for how each
// query family keys the result cache. Singles and batches MUST build keys
// through them — never through raw queryKey calls — so a batch item always
// shares hits with the equivalent single query, and so every option that
// changes the answer (k, radius, the exact flag, the seasonal scope) is
// provably part of the key. The per-family kind strings keep families from
// aliasing each other even at identical parameter hashes.

// matchKey keys best-match and k-NN results: mode and k are answer-changing
// options (a k=1 and a k=5 answer for the same q must never alias).
func matchKey(s keyScope, mode int, k int, q []float64) string {
	return queryKey(s.name, s.epoch, s.gen, s.layout, "match", []int{mode, k}, q)
}

// rangeKey keys range results on the full option set: length, the exact
// flag (exact and guaranteed-bound answers differ for the same q/radius),
// and the radius folded in with the query values.
func rangeKey(s keyScope, length int, radius float64, exact bool, q []float64) string {
	e := 0
	if exact {
		e = 1
	}
	return queryKey(s.name, s.epoch, s.gen, s.layout, "range", []int{length, e}, append(append([]float64(nil), q...), radius))
}

// seasonalKey keys seasonal results; seriesID < 0 (the data-driven form) is
// part of the key, so a per-series and a dataset-wide answer never alias.
func seasonalKey(s keyScope, seriesID, length int) string {
	return queryKey(s.name, s.epoch, s.gen, s.layout, "seasonal", []int{seriesID, length}, nil)
}

// recommendKey keys threshold recommendations on degree and length scope.
func recommendKey(s keyScope, degree, length int) string {
	return queryKey(s.name, s.epoch, s.gen, s.layout, "recommend", []int{degree, length}, nil)
}
