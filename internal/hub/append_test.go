package hub

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"onex"
)

func sineSeries(phase float64, n int) onex.Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(i)/4 + phase)
	}
	return onex.Series{Values: v}
}

func readyDataset(t *testing.T, h *Hub, name string, spec Spec) *Dataset {
	t.Helper()
	ds, err := h.Register(name, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestStaleSnapshotAfterExtendRegression is the register → extend → drop →
// re-register regression: before the fix, materialize preferred the spec's
// original snapshot file over the hub's own (re-saved on every Extend), so
// the re-registered dataset silently reloaded the pre-extend base and lost
// series.
func TestStaleSnapshotAfterExtendRegression(t *testing.T) {
	// An externally-built snapshot, as a pipeline would produce.
	base, err := onex.Build("d", []onex.Series{
		sineSeries(0, 48), sineSeries(0.5, 48), sineSeries(1, 48),
	}, onex.Options{ST: 0.3, Lengths: []int{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "ext.onex")
	if err := base.SaveFile(snap); err != nil {
		t.Fatal(err)
	}

	// Nested snapshot dir: also exercises the MkdirAll on re-snapshot (the
	// spec-snapshot load path never created the hub's own directory).
	dir := filepath.Join(t.TempDir(), "snaps", "nested")
	h := New(Config{SnapshotDir: dir})
	defer h.Close()
	spec := Spec{Snapshot: snap}
	ds := readyDataset(t, h, "d", spec)

	square := make([]float64, 48)
	for i := range square {
		if (i/8)%2 == 0 {
			square[i] = 1
		} else {
			square[i] = -1
		}
	}
	if err := ds.Extend([]onex.Series{sineSeries(2, 48), {Values: square}}); err != nil {
		t.Fatal(err)
	}
	if info := ds.Info(); info.SnapshotError != "" {
		t.Fatalf("re-snapshot after extend failed: %s", info.SnapshotError)
	}
	if err := h.Drop("d", false); err != nil {
		t.Fatal(err)
	}

	ds2 := readyDataset(t, h, "d", spec)
	b2, _, err := ds2.Base()
	if err != nil {
		t.Fatal(err)
	}
	if b2.NumSeries() != 5 {
		t.Fatalf("re-registered base has %d series, want 5 (stale pre-extend snapshot reloaded)", b2.NumSeries())
	}
	// A query with the extended series' distinctive shape must resolve to it.
	ms, err := ds2.Match(context.Background(), square[:16], onex.MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SeriesID != 4 {
		t.Errorf("square-wave query matched series %d, want the extended series 4", ms[0].SeriesID)
	}
}

// TestSnapshotReflectsAppend is the same staleness bar for the streaming
// path: points appended through the hub must survive Drop + re-register.
func TestSnapshotReflectsAppend(t *testing.T) {
	h := New(Config{SnapshotDir: t.TempDir()})
	defer h.Close()
	spec := Spec{
		Series: []onex.Series{sineSeries(0, 48), sineSeries(0.7, 48)},
		Opts:   onex.Options{ST: 0.3, Lengths: []int{8, 16}},
	}
	ds := readyDataset(t, h, "d", spec)
	genBefore := ds.Generation()
	if err := ds.Append(1, []float64{0.1, 0.2, 0.3, 0.4, 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Generation(); got != genBefore+1 {
		t.Errorf("generation %d after append, want %d", got, genBefore+1)
	}
	if info := ds.Info(); info.SnapshotError != "" {
		t.Fatalf("re-snapshot after append failed: %s", info.SnapshotError)
	}
	b, _, err := ds.Base()
	if err != nil {
		t.Fatal(err)
	}
	wantLen := b.Stats().Subsequences

	if err := h.Drop("d", false); err != nil {
		t.Fatal(err)
	}
	ds2 := readyDataset(t, h, "d", spec)
	b2, _, err := ds2.Base()
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Info().FromSnapshot {
		t.Error("re-register rebuilt instead of loading the snapshot")
	}
	if got := b2.Stats().Subsequences; got != wantLen {
		t.Errorf("reloaded base has %d subsequences, want %d (append lost)", got, wantLen)
	}
}

func TestHubAppendValidationAndCache(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	spec := Spec{
		Series: []onex.Series{sineSeries(0, 48), sineSeries(0.7, 48)},
		Opts:   onex.Options{ST: 0.3, Lengths: []int{8}},
	}
	ds := readyDataset(t, h, "d", spec)
	q := sineSeries(0, 48).Values[:8]
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	info := ds.Info()
	if info.CacheHits == 0 {
		t.Fatalf("expected a warm cache before append (hits=%d)", info.CacheHits)
	}
	if err := ds.Append(0, []float64{0.5, 0.6}); err != nil {
		t.Fatal(err)
	}
	// Appending invalidates this dataset's cached results: same query misses.
	misses := ds.Info().CacheMisses
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().CacheMisses; got != misses+1 {
		t.Errorf("expected a cache miss after append (misses %d → %d)", misses, got)
	}
	// Invalid appends surface errors without breaking the dataset.
	if err := ds.Append(99, []float64{1}); err == nil {
		t.Error("append to unknown series: want error")
	}
	if err := ds.Append(0, nil); err == nil {
		t.Error("append with no points: want error")
	}
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatalf("dataset broken after invalid appends: %v", err)
	}
}
