// Package hub is the multi-dataset serving substrate for onex-server: a
// thread-safe catalog of named ONEX bases with full lifecycle management.
//
// Each registered dataset moves through pending → building → ready (or
// failed) on a bounded worker pool, so heavy offline constructions never
// block registration or queries against other datasets. Built bases are
// optionally snapshotted to disk (onex.Base.SaveFile) and re-registration
// of a dropped dataset reloads the snapshot instead of rebuilding. Queries
// against a ready dataset go through a hub-wide bounded LRU result cache
// keyed on the dataset's registration epoch and generation counter, the
// query kind and a hash of the parameters; Extend swaps in the extended
// base, bumps the generation and invalidates the dataset's cached results,
// so readers never see stale answers while in-flight queries keep using
// the (immutable) old base.
package hub

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"onex"
	"onex/internal/dataset"
	"onex/internal/obs"
)

// Lifecycle and lookup errors.
var (
	// ErrClosed reports an operation against a closed hub.
	ErrClosed = errors.New("hub: hub closed")
	// ErrNotFound reports an unknown dataset name.
	ErrNotFound = errors.New("hub: dataset not found")
	// ErrExists reports a Register for a name already in the catalog.
	ErrExists = errors.New("hub: dataset already registered")
	// ErrNotReady reports a query against a dataset that is still pending
	// or building.
	ErrNotReady = errors.New("hub: dataset not ready")
	// ErrFailed reports a query against a dataset whose build failed.
	ErrFailed = errors.New("hub: dataset build failed")
	// ErrConflict reports an Extend that lost the swap race to a concurrent
	// Extend; retry against the new generation.
	ErrConflict = errors.New("hub: concurrent modification, retry")
)

// State is a dataset's lifecycle position.
type State int

const (
	// StatePending: registered, waiting for a build worker.
	StatePending State = iota
	// StateBuilding: a worker is running the offline construction (or
	// loading a snapshot).
	StateBuilding
	// StateReady: the base answers queries.
	StateReady
	// StateFailed: the build errored; Err/Info carry the cause.
	StateFailed
)

// String returns the lower-case state name used across the REST surface.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes a hub. The zero value is usable.
type Config struct {
	// BuildWorkers bounds concurrent offline constructions (default 2).
	BuildWorkers int
	// QueueDepth bounds the pending-build queue; Register blocks once it
	// is full (default 256).
	QueueDepth int
	// SnapshotDir, when non-empty, enables persistence: every successful
	// build — and every Extend/Append swap — is snapshotted to
	// <dir>/<name>.onex, and a Register finding a snapshot for its name
	// loads it instead of rebuilding, whatever source the spec names (the
	// hub's snapshot reflects incremental growth the spec predates). Use
	// Drop(name, purge=true) to discard it and force the next Register to
	// build from the spec. The directory is created on demand.
	SnapshotDir string
	// CacheEntries bounds the query-result LRU (0 = default 1024,
	// negative = disable caching).
	CacheEntries int
}

// Spec tells Register how to obtain a dataset: exactly one of Series,
// Path, Snapshot or Generator must be set.
type Spec struct {
	// Series supplies the raw series inline.
	Series []onex.Series
	// Path names a UCR-format TSV file to load.
	Path string
	// Snapshot names a persisted base (onex.Base.SaveFile) to reopen; the
	// build options travel inside the snapshot, so Opts is ignored. When
	// the hub persists its own snapshots (Config.SnapshotDir) and one
	// exists for this name, it wins over this file — it reflects
	// Extend/Append growth this file predates; Drop(name, purge=true)
	// before re-registering forces this file to load.
	Snapshot string
	// Generator names a synthetic paper dataset (dataset.ByName), scaled
	// by Scale (0 = full size) and generated from Seed.
	Generator string
	// Scale shrinks a generated dataset's cardinality (0 or 1 = full).
	Scale float64
	// Seed drives synthetic generation and the build's randomized
	// insertion order.
	Seed int64
	// Opts are the onex build options (Opts.ST is required unless the
	// dataset comes from a snapshot). Progress and Cancel are managed by
	// the hub and must be nil.
	Opts onex.Options
	// LengthCount, when Opts.Lengths is nil, indexes this many subsequence
	// lengths spread evenly from 2 to the longest series instead of the
	// onex default of every length (0 keeps the default).
	LengthCount int
}

func (sp Spec) validate() error {
	sources := 0
	for _, set := range []bool{len(sp.Series) > 0, sp.Path != "", sp.Snapshot != "", sp.Generator != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("hub: spec must set exactly one of Series, Path, Snapshot or Generator (got %d)", sources)
	}
	if sp.Opts.Progress != nil || sp.Opts.Cancel != nil {
		return errors.New("hub: Spec.Opts.Progress and Cancel are managed by the hub; leave them nil")
	}
	if sp.Snapshot == "" && (sp.Opts.ST <= 0) {
		return errors.New("hub: Spec.Opts.ST must be positive for built datasets")
	}
	return nil
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Hub is a concurrent catalog of named ONEX bases. All methods are safe
// for concurrent use.
type Hub struct {
	cfg   Config
	cache *resultCache

	mu       sync.RWMutex
	datasets map[string]*Dataset

	jobs      chan *Dataset
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	// epochs hands every registration a hub-unique id that participates in
	// cache keys, so a dropped-and-re-registered name can never be served
	// another incarnation's cached results.
	epochs atomic.Uint64

	// events counts hub-lifetime lifecycle work (monotonic, so the metrics
	// surface can expose them as Prometheus counters; they survive Drop,
	// unlike per-dataset tallies).
	events struct {
		builds, buildFailures, extends, appends, rebuilds atomic.Uint64
	}
}

// New starts a hub with cfg's worker pool running.
func New(cfg Config) *Hub {
	if cfg.BuildWorkers <= 0 {
		cfg.BuildWorkers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	capacity := cfg.CacheEntries
	switch {
	case capacity == 0:
		capacity = 1024
	case capacity < 0:
		capacity = -1
	}
	h := &Hub{
		cfg:      cfg,
		cache:    newResultCache(capacity),
		datasets: make(map[string]*Dataset),
		jobs:     make(chan *Dataset, cfg.QueueDepth),
		closed:   make(chan struct{}),
	}
	for i := 0; i < cfg.BuildWorkers; i++ {
		h.wg.Add(1)
		go h.worker()
	}
	return h
}

func (h *Hub) worker() {
	defer h.wg.Done()
	for {
		select {
		case <-h.closed:
			return
		case ds := <-h.jobs:
			ds.build()
		}
	}
}

// Register adds a named dataset and queues its build; it returns as soon
// as the dataset is cataloged (state pending). Use (*Dataset).Wait to block
// until the build finishes. When the hub persists snapshots and one exists
// for name, the build loads it instead of reconstructing (unless the spec
// itself names a different snapshot).
func (h *Hub) Register(name string, spec Spec) (*Dataset, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("hub: invalid dataset name %q (want %s)", name, nameRE)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if h.isClosed() {
		return nil, ErrClosed
	}
	ds := &Dataset{
		name:    name,
		spec:    spec,
		hub:     h,
		epoch:   h.epochs.Add(1),
		created: time.Now(),
		ready:   make(chan struct{}),
	}
	h.mu.Lock()
	if _, dup := h.datasets[name]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	h.datasets[name] = ds
	h.mu.Unlock()

	select {
	case h.jobs <- ds:
		// Close may have fired between the enqueue and the workers exiting
		// (or even drained the queue already); make sure the dataset still
		// reaches a terminal state. fail is a no-op once a worker won.
		if h.isClosed() {
			ds.fail(ErrClosed)
		}
	case <-h.closed:
		ds.fail(ErrClosed)
	}
	return ds, nil
}

// Get looks a dataset up by name.
func (h *Hub) Get(name string) (*Dataset, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ds, ok := h.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ds, nil
}

// List returns every cataloged dataset sorted by name.
func (h *Hub) List() []*Dataset {
	h.mu.RLock()
	out := make([]*Dataset, 0, len(h.datasets))
	for _, ds := range h.datasets {
		out = append(out, ds)
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Drop removes a dataset from the catalog and invalidates its cached
// results. In-flight queries against the old base finish undisturbed. When
// purgeSnapshot is true its on-disk snapshot (if any) is deleted too;
// otherwise a later Register of the same name reloads it, skipping the
// rebuild.
func (h *Hub) Drop(name string, purgeSnapshot bool) error {
	h.mu.Lock()
	ds, ok := h.datasets[name]
	if ok {
		delete(h.datasets, name)
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ds.dropped.Store(true)
	h.cache.purgePrefix(name + "|")
	if purgeSnapshot {
		if p := h.snapshotPath(name); p != "" {
			// Remove under the dataset's snapshot mutex: an in-flight
			// Extend/Append re-snapshot either observes dropped=true and
			// skips, or finishes its write before this remove — never
			// resurrecting a purged file afterwards.
			ds.snapMu.Lock()
			err := os.Remove(p)
			ds.snapMu.Unlock()
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// Close stops the worker pool, aborts in-flight builds (they fail with
// onex.ErrBuildCanceled) and fails still-queued registrations with
// ErrClosed. Ready datasets remain queryable; Close never blocks queries.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		close(h.closed)
		h.wg.Wait()
		// Fail whatever the workers never picked up: first the queue (a
		// Register racing Close can still have enqueued), then the catalog.
	drain:
		for {
			select {
			case ds := <-h.jobs:
				ds.fail(ErrClosed)
			default:
				break drain
			}
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		for _, ds := range h.datasets {
			ds.fail(ErrClosed)
		}
	})
}

func (h *Hub) isClosed() bool {
	select {
	case <-h.closed:
		return true
	default:
		return false
	}
}

// snapshotPath maps a dataset name into the hub's snapshot directory
// ("" when persistence is disabled).
func (h *Hub) snapshotPath(name string) string {
	if h.cfg.SnapshotDir == "" {
		return ""
	}
	return filepath.Join(h.cfg.SnapshotDir, name+".onex")
}

// Stats aggregates the hub-wide serving counters.
type Stats struct {
	// Datasets counts cataloged datasets; ByState breaks the count down
	// by lifecycle state.
	Datasets int            `json:"datasets"`
	ByState  map[string]int `json:"byState"`
	// Representatives, Series and Subsequences sum over ready datasets.
	Representatives int   `json:"representatives"`
	Series          int   `json:"series"`
	Subsequences    int64 `json:"subsequences"`
	// Cache reports the shared query-result cache.
	Cache CacheStats `json:"cache"`
	// Maintenance reports every ready dataset's incremental-maintenance
	// health — drift fraction, rebuilds triggered, last rebuild cost — so
	// the amortized rebuild policy is tunable from data (ROADMAP:
	// observability).
	Maintenance map[string]MaintenanceStats `json:"maintenance"`
	// Query sums the online-query work tallies (queries answered,
	// bound-pruning counters) over ready datasets.
	Query QueryCounters `json:"query"`
	// Events counts hub-lifetime lifecycle work; monotonic (they never
	// decrease on Drop), so safe to expose as Prometheus counters.
	Events EventStats `json:"events"`
}

// EventStats counts lifecycle events since the hub started.
type EventStats struct {
	// Builds counts successful offline constructions and snapshot loads;
	// BuildFailures counts registrations that reached StateFailed.
	Builds        uint64 `json:"builds"`
	BuildFailures uint64 `json:"buildFailures"`
	// Extends and Appends count successful incremental-maintenance swaps.
	Extends uint64 `json:"extends"`
	Appends uint64 `json:"appends"`
	// Rebuilds counts drift-triggered full rebuilds absorbed by swaps.
	Rebuilds uint64 `json:"rebuilds"`
}

// QueryCounters is a dataset's lifetime online-query work tally, shaped for
// the REST surface (see onex.QueryStats for field semantics).
type QueryCounters struct {
	Queries       uint64 `json:"queries"`
	RepsExamined  uint64 `json:"repsExamined"`
	PrunedByKim   uint64 `json:"prunedByKim"`
	PrunedByKeogh uint64 `json:"prunedByKeogh"`
	DTWComputed   uint64 `json:"dtwComputed"`
	MembersTested uint64 `json:"membersTested"`
}

func (c *QueryCounters) add(o QueryCounters) {
	c.Queries += o.Queries
	c.RepsExamined += o.RepsExamined
	c.PrunedByKim += o.PrunedByKim
	c.PrunedByKeogh += o.PrunedByKeogh
	c.DTWComputed += o.DTWComputed
	c.MembersTested += o.MembersTested
}

// MaintenanceStats is one dataset's amortized-rebuild-policy counters.
type MaintenanceStats struct {
	// Drift is the incremental-member fraction since the last full build.
	Drift float64 `json:"drift"`
	// Rebuilds counts drift-triggered full rebuilds.
	Rebuilds int64 `json:"rebuilds"`
	// LastRebuildSeconds is the most recent rebuild's wall-clock cost.
	LastRebuildSeconds float64 `json:"lastRebuildSeconds"`
	// Shards is the dataset's serving layout (1 = unsharded).
	Shards int `json:"shards"`
}

// ShardInfo is one shard of a dataset's serving layout, shaped for the REST
// surface.
type ShardInfo struct {
	Shard        int   `json:"shard"`
	Series       int   `json:"series"`
	Groups       int   `json:"groups"`
	Subsequences int64 `json:"subsequences"`
	IndexBytes   int64 `json:"indexBytes"`
}

// Stats snapshots the hub-wide counters.
func (h *Hub) Stats() Stats {
	st := Stats{ByState: make(map[string]int), Maintenance: make(map[string]MaintenanceStats)}
	for _, ds := range h.List() {
		info := ds.Info()
		st.Datasets++
		st.ByState[info.State]++
		if info.State == StateReady.String() {
			st.Representatives += info.Representatives
			st.Series += info.Series
			st.Subsequences += info.Subsequences
			st.Maintenance[info.Name] = MaintenanceStats{
				Drift:              info.Drift,
				Rebuilds:           info.Rebuilds,
				LastRebuildSeconds: info.LastRebuildSeconds,
				Shards:             info.Shards,
			}
			st.Query.add(info.Query)
		}
	}
	st.Cache = h.cache.stats()
	st.Events = EventStats{
		Builds:        h.events.builds.Load(),
		BuildFailures: h.events.buildFailures.Load(),
		Extends:       h.events.extends.Load(),
		Appends:       h.events.appends.Load(),
		Rebuilds:      h.events.rebuilds.Load(),
	}
	return st
}

// Dataset is one cataloged ONEX base and its lifecycle state. Queries are
// answered under a read lock against an immutable base, so any number can
// run concurrently with each other and with Extend (which constructs the
// extended base outside the lock and only swaps pointers under the write
// lock).
type Dataset struct {
	name    string
	spec    Spec
	hub     *Hub
	epoch   uint64
	created time.Time
	ready   chan struct{} // closed on the pending/building → ready/failed edge
	once    sync.Once     // guards close(ready)
	dropped atomic.Bool

	progressDone  atomic.Int64
	progressTotal atomic.Int64
	hits, misses  atomic.Uint64

	// snapMu serializes snapshot writes so overlapping Extends can never
	// leave an older generation on disk (each write saves the base that is
	// current when the write starts; the last writer is the newest).
	snapMu sync.Mutex

	mu           sync.RWMutex
	state        State
	err          error
	base         *onex.Base
	gen          uint64
	fromSnapshot bool
	readyAt      time.Time
	snapshotErr  error
}

// Name returns the catalog name.
func (d *Dataset) Name() string { return d.name }

// State returns the current lifecycle state.
func (d *Dataset) State() State {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.state
}

// Err returns the build failure cause (nil unless State is StateFailed).
func (d *Dataset) Err() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.err
}

// Workers returns the shard-worker addresses the dataset's base fans out
// to, or nil for in-process (local-transport) datasets and datasets that
// are not ready yet. The slice is fresh; callers may retain it.
func (d *Dataset) Workers() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.base == nil {
		return nil
	}
	return d.base.ShardWorkers()
}

// Generation returns the swap counter: 0 until ready, then incremented by
// every Extend. Cache keys embed it, so a bump orphans stale results.
func (d *Dataset) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// Wait blocks until the dataset reaches ready or failed (returning the
// failure cause) or ctx ends.
func (d *Dataset) Wait(ctx context.Context) error {
	select {
	case <-d.ready:
		return d.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Base returns the current base and its generation for direct (uncached)
// use. The base is immutable; it stays valid after Extend/Drop.
func (d *Dataset) Base() (*onex.Base, uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	switch d.state {
	case StateReady:
		return d.base, d.gen, nil
	case StateFailed:
		return nil, 0, fmt.Errorf("%w: %q: %v", ErrFailed, d.name, d.err)
	default:
		return nil, 0, fmt.Errorf("%w: %q is %s", ErrNotReady, d.name, d.state)
	}
}

// Info is a point-in-time description of a dataset, shaped for the REST
// surface.
type Info struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Progress is the build completion fraction in [0,1].
	Progress float64 `json:"progress"`
	// Generation counts base swaps (Extend) since ready.
	Generation uint64 `json:"generation"`
	// FromSnapshot marks bases loaded from disk instead of built.
	FromSnapshot bool `json:"fromSnapshot"`
	// SnapshotError surfaces a failed snapshot write (the dataset still
	// serves; only persistence is degraded).
	SnapshotError string `json:"snapshotError,omitempty"`

	Series          int     `json:"series,omitempty"`
	Representatives int     `json:"representatives,omitempty"`
	Subsequences    int64   `json:"subsequences,omitempty"`
	IndexBytes      int64   `json:"indexBytes,omitempty"`
	ST              float64 `json:"st,omitempty"`
	STHalf          float64 `json:"stHalf,omitempty"`
	STFinal         float64 `json:"stFinal,omitempty"`
	Lengths         []int   `json:"lengths,omitempty"`
	BuildSeconds    float64 `json:"buildSeconds,omitempty"`

	// Maintenance observability: the incremental fraction since the last
	// full build, how many drift-triggered rebuilds the base has absorbed,
	// and the last one's cost (see onex.Options.RebuildDrift).
	Drift              float64 `json:"drift"`
	Rebuilds           int64   `json:"rebuilds"`
	LastRebuildSeconds float64 `json:"lastRebuildSeconds,omitempty"`

	// Shards is the serving layout (1 = unsharded); ShardStats breaks a
	// sharded base down per shard (see onex.Options.Shards).
	Shards     int         `json:"shards,omitempty"`
	ShardStats []ShardInfo `json:"shardStats,omitempty"`
	// ShardWorkers lists the remote worker processes serving the shards
	// (absent for in-process layouts).
	ShardWorkers []string `json:"shardWorkers,omitempty"`

	CreatedAt time.Time `json:"createdAt"`
	ReadyAt   time.Time `json:"readyAt"`

	// CacheHits / CacheMisses count this dataset's query-cache outcomes.
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`

	// Query tallies the online work the current base has answered (cache
	// hits don't tick it; process-local, reset by rebuild-class swaps).
	Query QueryCounters `json:"query"`
}

// Info snapshots the dataset's state, metadata and cache counters.
func (d *Dataset) Info() Info {
	d.mu.RLock()
	info := Info{
		Name:         d.name,
		State:        d.state.String(),
		Generation:   d.gen,
		FromSnapshot: d.fromSnapshot,
		CreatedAt:    d.created,
		ReadyAt:      d.readyAt,
	}
	if d.err != nil {
		info.Error = d.err.Error()
	}
	if d.snapshotErr != nil {
		info.SnapshotError = d.snapshotErr.Error()
	}
	base := d.base
	d.mu.RUnlock()

	if total := d.progressTotal.Load(); total > 0 {
		info.Progress = float64(d.progressDone.Load()) / float64(total)
	}
	if base != nil {
		st := base.Stats()
		info.Progress = 1
		info.Series = base.NumSeries()
		info.Representatives = st.Representatives
		info.Subsequences = st.Subsequences
		info.IndexBytes = st.IndexBytes
		info.ST = base.ST()
		info.STHalf = st.STHalf
		info.STFinal = st.STFinal
		info.Lengths = base.Lengths()
		info.BuildSeconds = st.BuildTime.Seconds()
		info.Drift = st.Drift
		info.Rebuilds = st.Rebuilds
		info.LastRebuildSeconds = st.LastRebuild.Seconds()
		info.Shards = st.Shards
		info.ShardWorkers = base.ShardWorkers()
		info.Query = QueryCounters{
			Queries:       st.Query.Queries,
			RepsExamined:  st.Query.RepsExamined,
			PrunedByKim:   st.Query.PrunedByKim,
			PrunedByKeogh: st.Query.PrunedByKeogh,
			DTWComputed:   st.Query.DTWComputed,
			MembersTested: st.Query.MembersTested,
		}
		for _, sh := range st.PerShard {
			info.ShardStats = append(info.ShardStats, ShardInfo{
				Shard:        sh.Shard,
				Series:       sh.Series,
				Groups:       sh.Groups,
				Subsequences: sh.Subsequences,
				IndexBytes:   sh.IndexBytes,
			})
		}
	}
	info.CacheHits = d.hits.Load()
	info.CacheMisses = d.misses.Load()
	return info
}

// build runs on a hub worker: it materializes the base (snapshot load or
// offline construction), persists it when configured, and flips the
// lifecycle state.
func (d *Dataset) build() {
	if d.dropped.Load() {
		d.fail(fmt.Errorf("%w: dropped before build", ErrNotFound))
		return
	}
	if d.hub.isClosed() {
		d.fail(ErrClosed)
		return
	}
	d.mu.Lock()
	d.state = StateBuilding
	d.mu.Unlock()

	base, fromSnapshot, err := d.materialize()
	if err != nil {
		d.fail(err)
		return
	}

	var snapErr error
	if path := d.hub.snapshotPath(d.name); path != "" && !fromSnapshot && !d.dropped.Load() {
		d.snapMu.Lock()
		if err := os.MkdirAll(d.hub.cfg.SnapshotDir, 0o755); err != nil {
			snapErr = err
		} else {
			snapErr = base.SaveFile(path)
		}
		d.snapMu.Unlock()
	}

	d.mu.Lock()
	if d.state != StateBuilding {
		// fail() won the race (hub closed between our checks); discard.
		d.mu.Unlock()
		d.once.Do(func() { close(d.ready) })
		return
	}
	d.state = StateReady
	d.base = base
	d.fromSnapshot = fromSnapshot
	d.readyAt = time.Now()
	d.snapshotErr = snapErr
	d.mu.Unlock()
	d.hub.events.builds.Add(1)
	d.once.Do(func() { close(d.ready) })
}

// materialize obtains the base per the spec, preferring an existing hub
// snapshot over every other source — including an explicit Spec.Snapshot:
// the hub's own snapshot is re-written on every successful Extend/Append
// swap, so it reflects incremental growth the spec's original file (or raw
// series) predates; preferring the spec here would make Drop + re-register
// silently resurrect the pre-extension base. An unreadable hub snapshot
// falls back to the spec's source rather than failing the registration.
func (d *Dataset) materialize() (base *onex.Base, fromSnapshot bool, err error) {
	if path := d.hub.snapshotPath(d.name); path != "" {
		if base, err := onex.LoadFileDistributed(path, d.spec.Opts.ShardWorkers); err == nil {
			return base, true, nil
		}
	}
	if d.spec.Snapshot != "" {
		base, err = onex.LoadFileDistributed(d.spec.Snapshot, d.spec.Opts.ShardWorkers)
		return base, err == nil, err
	}
	series, name, err := d.spec.series(d.name)
	if err != nil {
		return nil, false, err
	}
	opts := d.spec.Opts
	if opts.Lengths == nil && d.spec.LengthCount > 0 {
		maxLen := 0
		for _, s := range series {
			if len(s.Values) > maxLen {
				maxLen = len(s.Values)
			}
		}
		opts.Lengths = spreadLengths(maxLen, d.spec.LengthCount)
	}
	d.progressTotal.Store(0)
	opts.Progress = func(done, total int) {
		d.progressTotal.Store(int64(total))
		d.progressDone.Store(int64(done))
	}
	opts.Cancel = d.hub.closed
	base, err = onex.Build(name, series, opts)
	return base, false, err
}

// series materializes the raw input series for the build paths.
func (sp Spec) series(name string) ([]onex.Series, string, error) {
	switch {
	case len(sp.Series) > 0:
		return sp.Series, name, nil
	case sp.Path != "":
		d, err := dataset.LoadUCRFile(sp.Path)
		if err != nil {
			return nil, "", err
		}
		out := make([]onex.Series, 0, d.N())
		for _, s := range d.Series {
			out = append(out, onex.Series{Label: s.Label, Values: s.Values})
		}
		return out, name, nil
	case sp.Generator != "":
		spec, ok := dataset.ByName(sp.Generator)
		if !ok {
			return nil, "", fmt.Errorf("hub: unknown generator %q (have %v)", sp.Generator, dataset.Names())
		}
		if sp.Scale > 0 && sp.Scale < 1 {
			spec = spec.Scaled(sp.Scale)
		}
		gen := spec.Generate(sp.Seed)
		out := make([]onex.Series, 0, gen.N())
		for _, s := range gen.Series {
			out = append(out, onex.Series{Label: s.Label, Values: s.Values})
		}
		return out, name, nil
	default:
		return nil, "", errors.New("hub: spec has no data source")
	}
}

// spreadLengths picks count subsequence lengths spread evenly across
// [2, max], deduplicated — the serving default for datasets whose spec does
// not pin an explicit length set.
func spreadLengths(max, count int) []int {
	if count <= 0 || max < 2 {
		return nil
	}
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		l := 2 + i*(max-2)/count
		if count > 1 {
			l = 2 + i*(max-2)/(count-1)
		}
		if l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

// fail moves the dataset to StateFailed (first terminal transition wins)
// and releases waiters.
func (d *Dataset) fail(err error) {
	d.mu.Lock()
	failed := d.state != StateReady && d.state != StateFailed
	if failed {
		d.state = StateFailed
		d.err = err
	}
	d.mu.Unlock()
	if failed {
		d.hub.events.buildFailures.Add(1)
	}
	d.once.Do(func() { close(d.ready) })
}

// Extend adds series to the dataset: the extended base is constructed
// concurrently with in-flight queries (which keep the old immutable base),
// then swapped in, bumping the generation and invalidating this dataset's
// cached results. A concurrent Extend/Append on the same generation returns
// ErrConflict. When the hub persists snapshots the new base is re-saved so
// a reload reflects the extension.
func (d *Dataset) Extend(series []onex.Series) error {
	return d.swap(&d.hub.events.extends, func(base *onex.Base) (*onex.Base, error) {
		return base.Extend(series)
	})
}

// Append grows one existing series of the dataset in time (streaming point
// ingestion): the grown base is constructed concurrently with in-flight
// queries, swapped in under the same generation CAS Extend uses, the
// dataset's cached results are invalidated, and the snapshot is re-saved so
// a reload reflects the appended points.
func (d *Dataset) Append(seriesID int, points []float64) error {
	return d.swap(&d.hub.events.appends, func(base *onex.Base) (*onex.Base, error) {
		return base.Append(seriesID, points...)
	})
}

// swap runs one incremental-maintenance step: grow derives the next base
// from the current one (outside any lock), then the pointer swap is
// validated against the generation observed before growing — a concurrent
// modification returns ErrConflict rather than silently dropping either
// update. After a successful swap the dataset's cache entries are purged,
// event (the caller's hub-lifetime counter) ticks, any drift-triggered
// rebuild the grow absorbed ticks the rebuild counter, and the snapshot is
// re-written.
func (d *Dataset) swap(event *atomic.Uint64, grow func(*onex.Base) (*onex.Base, error)) error {
	base, gen, err := d.Base()
	if err != nil {
		return err
	}
	preRebuilds := base.Stats().Rebuilds
	next, err := grow(base)
	if err != nil {
		return err
	}

	d.mu.Lock()
	if d.state != StateReady || d.gen != gen {
		d.mu.Unlock()
		return ErrConflict
	}
	d.base = next
	d.gen++
	d.mu.Unlock()
	event.Add(1)
	if delta := next.Stats().Rebuilds - preRebuilds; delta > 0 {
		d.hub.events.rebuilds.Add(uint64(delta))
	}
	d.hub.cache.purgePrefix(d.name + "|")
	d.resnapshot()
	return nil
}

// resnapshot re-writes the on-disk snapshot with the dataset's current base
// so a later Drop + re-register reloads post-maintenance data. Writes are
// serialized and always persist the base that is current when the write
// starts, so an overlapping swap whose (slow) save lands last can never
// regress the on-disk snapshot to an older generation. The snapshot
// directory is created on demand — a base loaded from an external
// Spec.Snapshot may be the first to persist under the hub's own directory.
func (d *Dataset) resnapshot() {
	path := d.hub.snapshotPath(d.name)
	if path == "" {
		return
	}
	d.snapMu.Lock()
	// The dropped check must happen under snapMu: Drop's purge removes the
	// file under the same mutex, so a swap racing a purge can never write
	// the snapshot back after the remove.
	if d.dropped.Load() {
		d.snapMu.Unlock()
		return
	}
	d.mu.RLock()
	current := d.base
	d.mu.RUnlock()
	snapErr := os.MkdirAll(d.hub.cfg.SnapshotDir, 0o755)
	if snapErr == nil {
		snapErr = current.SaveFile(path)
	}
	d.snapMu.Unlock()
	d.mu.Lock()
	d.snapshotErr = snapErr
	d.mu.Unlock()
}

// cached runs compute through the hub's result cache. Results are shared —
// callers must treat them as immutable.
func (d *Dataset) cached(key string, compute func() (any, error)) (any, error) {
	return d.cachedT(key, nil, compute)
}

// cachedT is cached with tracing: a non-nil rec gets a "cache" span whose
// hit attribute is 1 on a cache hit (in which case no engine spans follow —
// a hit does zero cascade work) and 0 on the computing path.
func (d *Dataset) cachedT(key string, rec *obs.Trace, compute func() (any, error)) (any, error) {
	var sc obs.SpanScope
	if rec != nil {
		sc = rec.StartSpan("cache")
	}
	if v, ok := d.hub.cache.get(key); ok {
		d.hits.Add(1)
		if rec != nil {
			sc.Attr("hit", 1).End()
		}
		return v, nil
	}
	d.misses.Add(1)
	if rec != nil {
		sc.Attr("hit", 0).End()
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	d.hub.cache.put(key, v)
	return v, nil
}

// scope builds the cache-key identity for queries against one (base, gen)
// observation.
func (d *Dataset) scope(base *onex.Base, gen uint64) keyScope {
	return keyScope{name: d.name, epoch: d.epoch, gen: gen, layout: base.LayoutSignature()}
}

// Match answers a similarity query (k ≤ 1 = best match, else k-NN) through
// the result cache. The returned slice is shared; do not mutate it. ctx
// carries cancellation and the request id into the engine's per-shard
// fan-out (a canceled ctx stops distributed work between rounds).
func (d *Dataset) Match(ctx context.Context, q []float64, mode onex.MatchMode, k int) ([]onex.Match, error) {
	return d.MatchObserved(ctx, q, mode, k, nil)
}

// MatchObserved is Match with optional tracing: a non-nil rec records the
// cache lookup and — on a miss — the engine's scan/refine spans and work
// counters. Answers are identical to Match, and cache hits still populate
// the trace (with zero engine work).
func (d *Dataset) MatchObserved(ctx context.Context, q []float64, mode onex.MatchMode, k int, rec *obs.Trace) ([]onex.Match, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	key := matchKey(d.scope(base, gen), int(mode), k, q)
	v, err := d.cachedT(key, rec, func() (any, error) {
		if k == 1 {
			m, err := base.BestMatchObserved(ctx, q, mode, rec)
			if err != nil {
				return nil, err
			}
			return []onex.Match{m}, nil
		}
		return base.BestKMatchesObserved(ctx, q, mode, k, rec)
	})
	if err != nil {
		return nil, err
	}
	return v.([]onex.Match), nil
}

// MatchBatch answers many best-match queries in one call. Each query goes
// through the result cache under the same key a single k=1 Match uses, so
// batches and singles share hits; the misses are answered together by
// onex.Base.BestMatchBatch, which fans them across the base's worker pool.
// Results are positional and carry per-query errors (a malformed query
// fails alone); only successful answers are cached. The returned matches
// are shared — callers must treat them as immutable.
func (d *Dataset) MatchBatch(ctx context.Context, qs [][]float64, mode onex.MatchMode) ([]onex.BatchResult, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	out := make([]onex.BatchResult, len(qs))
	keys := make([]string, len(qs))
	missIdx := make([]int, 0, len(qs))
	scope := d.scope(base, gen)
	for i, q := range qs {
		keys[i] = matchKey(scope, int(mode), 1, q)
		if v, ok := d.hub.cache.get(keys[i]); ok {
			d.hits.Add(1)
			out[i] = onex.BatchResult{Match: v.([]onex.Match)[0]}
			continue
		}
		d.misses.Add(1)
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	sub := make([][]float64, len(missIdx))
	for j, i := range missIdx {
		sub[j] = qs[i]
	}
	for j, r := range base.BestMatchBatch(ctx, sub, mode) {
		i := missIdx[j]
		out[i] = r
		if r.Err == nil {
			d.hub.cache.put(keys[i], []onex.Match{r.Match})
		}
	}
	return out, nil
}

// KNNBatch answers many match/k-NN queries in one call. Each item goes
// through the result cache under the same key the equivalent single Match
// uses (mode and k included), so batches and singles share hits. K ≤ 1
// items compute through the BestMatch path — exactly the single k=1 Match
// computation — and K > 1 items through BestKMatchesBatch; both miss sets
// fan across the base's worker pool. Results are positional with per-item
// errors; only successes are cached. Returned matches are shared — treat
// them as immutable.
func (d *Dataset) KNNBatch(ctx context.Context, qs []onex.KNNQuery) ([]onex.KNNBatchResult, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	out := make([]onex.KNNBatchResult, len(qs))
	keys := make([]string, len(qs))
	scope := d.scope(base, gen)
	var missOne, missK []int
	for i, q := range qs {
		k := q.K
		if k < 1 {
			k = 1
		}
		keys[i] = matchKey(scope, int(q.Mode), k, q.Query)
		if v, ok := d.hub.cache.get(keys[i]); ok {
			d.hits.Add(1)
			out[i] = onex.KNNBatchResult{Matches: v.([]onex.Match)}
			continue
		}
		d.misses.Add(1)
		if k == 1 {
			missOne = append(missOne, i)
		} else {
			missK = append(missK, i)
		}
	}
	if len(missOne) > 0 {
		// BestMatch path, per mode, so a batch K=1 answer is bit-identical
		// to the single Match answer cached under the same key.
		byMode := map[onex.MatchMode][]int{}
		for _, i := range missOne {
			byMode[qs[i].Mode] = append(byMode[qs[i].Mode], i)
		}
		for mode, idxs := range byMode {
			sub := make([][]float64, len(idxs))
			for j, i := range idxs {
				sub[j] = qs[i].Query
			}
			for j, r := range base.BestMatchBatch(ctx, sub, mode) {
				i := idxs[j]
				if r.Err != nil {
					out[i] = onex.KNNBatchResult{Err: r.Err}
					continue
				}
				ms := []onex.Match{r.Match}
				out[i] = onex.KNNBatchResult{Matches: ms}
				d.hub.cache.put(keys[i], ms)
			}
		}
	}
	if len(missK) > 0 {
		sub := make([]onex.KNNQuery, len(missK))
		for j, i := range missK {
			sub[j] = qs[i]
		}
		for j, r := range base.BestKMatchesBatch(ctx, sub) {
			i := missK[j]
			out[i] = r
			if r.Err == nil {
				d.hub.cache.put(keys[i], r.Matches)
			}
		}
	}
	return out, nil
}

// RangeBatch answers many range queries in one call, each item cached under
// the same key the equivalent single Range uses (length, radius and the
// exact flag included). Results are positional with per-item errors; only
// successes are cached. Returned matches are shared — treat them as
// immutable.
func (d *Dataset) RangeBatch(ctx context.Context, qs []onex.RangeQuery) ([]onex.RangeBatchResult, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	out := make([]onex.RangeBatchResult, len(qs))
	keys := make([]string, len(qs))
	missIdx := make([]int, 0, len(qs))
	scope := d.scope(base, gen)
	for i, q := range qs {
		keys[i] = rangeKey(scope, q.Length, q.Radius, q.Exact, q.Query)
		if v, ok := d.hub.cache.get(keys[i]); ok {
			d.hits.Add(1)
			out[i] = onex.RangeBatchResult{Matches: v.([]onex.RangeMatch)}
			continue
		}
		d.misses.Add(1)
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	sub := make([]onex.RangeQuery, len(missIdx))
	for j, i := range missIdx {
		sub[j] = qs[i]
	}
	for j, r := range base.RangeSearchBatch(ctx, sub) {
		i := missIdx[j]
		out[i] = r
		if r.Err == nil {
			d.hub.cache.put(keys[i], r.Matches)
		}
	}
	return out, nil
}

// SeasonalBatch answers many seasonal queries in one call, each item cached
// under the same key the equivalent single Seasonal uses (SeriesID < 0 =
// dataset-wide). Results are positional with per-item errors; only
// successes are cached. Returned patterns are shared — treat them as
// immutable.
func (d *Dataset) SeasonalBatch(qs []onex.SeasonalQuery) ([]onex.SeasonalBatchResult, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	out := make([]onex.SeasonalBatchResult, len(qs))
	keys := make([]string, len(qs))
	missIdx := make([]int, 0, len(qs))
	scope := d.scope(base, gen)
	for i, q := range qs {
		sid := q.SeriesID
		if sid < 0 {
			sid = -1 // every dataset-wide form keys identically
		}
		keys[i] = seasonalKey(scope, sid, q.Length)
		if v, ok := d.hub.cache.get(keys[i]); ok {
			d.hits.Add(1)
			out[i] = onex.SeasonalBatchResult{Patterns: v.([]onex.Pattern)}
			continue
		}
		d.misses.Add(1)
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	sub := make([]onex.SeasonalQuery, len(missIdx))
	for j, i := range missIdx {
		sub[j] = qs[i]
	}
	for j, r := range base.SeasonalBatch(sub) {
		i := missIdx[j]
		out[i] = r
		if r.Err == nil {
			d.hub.cache.put(keys[i], r.Patterns)
		}
	}
	return out, nil
}

// Range answers a range query through the result cache. With exact set,
// matches admitted through the Lemma 2 guarantee carry their true DTW
// instead of the ST upper bound (onex.Base.RangeSearchExact); the two modes
// cache under distinct keys.
func (d *Dataset) Range(ctx context.Context, q []float64, length int, radius float64, exact bool) ([]onex.RangeMatch, error) {
	return d.RangeObserved(ctx, q, length, radius, exact, nil)
}

// RangeObserved is Range with optional tracing (see MatchObserved).
func (d *Dataset) RangeObserved(ctx context.Context, q []float64, length int, radius float64, exact bool, rec *obs.Trace) ([]onex.RangeMatch, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	key := rangeKey(d.scope(base, gen), length, radius, exact, q)
	v, err := d.cachedT(key, rec, func() (any, error) {
		return base.RangeSearchObserved(ctx, q, length, radius, exact, rec)
	})
	if err != nil {
		return nil, err
	}
	return v.([]onex.RangeMatch), nil
}

// Seasonal answers a seasonal-pattern query through the result cache;
// seriesID < 0 means dataset-wide (SeasonalAll).
func (d *Dataset) Seasonal(seriesID, length int) ([]onex.Pattern, error) {
	return d.SeasonalObserved(seriesID, length, nil)
}

// SeasonalObserved is Seasonal with optional tracing (see MatchObserved).
func (d *Dataset) SeasonalObserved(seriesID, length int, rec *obs.Trace) ([]onex.Pattern, error) {
	base, gen, err := d.Base()
	if err != nil {
		return nil, err
	}
	if seriesID < 0 {
		seriesID = -1
	}
	key := seasonalKey(d.scope(base, gen), seriesID, length)
	v, err := d.cachedT(key, rec, func() (any, error) {
		if seriesID < 0 {
			return base.SeasonalAllObserved(length, rec)
		}
		return base.SeasonalObserved(seriesID, length, rec)
	})
	if err != nil {
		return nil, err
	}
	return v.([]onex.Pattern), nil
}

// Recommend answers a threshold-recommendation query (length < 0 =
// dataset-global) through the result cache.
func (d *Dataset) Recommend(degree onex.Degree, length int) (onex.Range, error) {
	base, gen, err := d.Base()
	if err != nil {
		return onex.Range{}, err
	}
	key := recommendKey(d.scope(base, gen), int(degree), length)
	v, err := d.cached(key, func() (any, error) { return base.RecommendThreshold(degree, length) })
	if err != nil {
		return onex.Range{}, err
	}
	return v.(onex.Range), nil
}
