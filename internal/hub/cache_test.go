package hub

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a|1", 1)
	c.put("b|1", 2)
	if _, ok := c.get("a|1"); !ok {
		t.Fatal("a|1 missing")
	}
	c.put("c|1", 3) // evicts b|1 (least recently used)
	if _, ok := c.get("b|1"); ok {
		t.Error("b|1 should have been evicted")
	}
	if _, ok := c.get("a|1"); !ok {
		t.Error("a|1 should have survived (recently used)")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCachePutUpdatesExisting(t *testing.T) {
	c := newResultCache(4)
	c.put("k", 1)
	c.put("k", 2)
	if v, _ := c.get("k"); v != 2 {
		t.Errorf("get = %v, want 2", v)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestCachePurgePrefix(t *testing.T) {
	c := newResultCache(10)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("ecg|%d", i), i)
		c.put(fmt.Sprintf("power|%d", i), i)
	}
	c.purgePrefix("ecg|")
	for i := 0; i < 3; i++ {
		if _, ok := c.get(fmt.Sprintf("ecg|%d", i)); ok {
			t.Errorf("ecg|%d survived purge", i)
		}
		if _, ok := c.get(fmt.Sprintf("power|%d", i)); !ok {
			t.Errorf("power|%d purged wrongly", i)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	if c != nil {
		t.Fatal("capacity < 0 should disable the cache")
	}
	c.put("k", 1) // must not panic on nil receiver
	if _, ok := c.get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	c.purgePrefix("k")
	if st := c.stats(); st.Capacity != -1 {
		t.Errorf("disabled stats = %+v", st)
	}
}

func TestQueryKeyDiscriminates(t *testing.T) {
	base := queryKey("d", 7, 1, 11, "match", []int{1, 2}, []float64{0.5, 0.25})
	distinct := []string{
		queryKey("d", 8, 1, 11, "match", []int{1, 2}, []float64{0.5, 0.25}),    // epoch (re-registration)
		queryKey("d", 7, 2, 11, "match", []int{1, 2}, []float64{0.5, 0.25}),    // generation
		queryKey("d", 7, 1, 12, "match", []int{1, 2}, []float64{0.5, 0.25}),    // shard layout
		queryKey("d", 7, 1, 11, "range", []int{1, 2}, []float64{0.5, 0.25}),    // kind
		queryKey("d", 7, 1, 11, "match", []int{2, 2}, []float64{0.5, 0.25}),    // int params
		queryKey("d", 7, 1, 11, "match", []int{1, 2}, []float64{0.25, 0.5}),    // float order
		queryKey("e", 7, 1, 11, "match", []int{1, 2}, []float64{0.5, 0.25}),    // dataset
		queryKey("d", 7, 1, 11, "match", []int{1, 2}, []float64{0.5, 0.25, 0}), // arity
	}
	for i, k := range distinct {
		if k == base {
			t.Errorf("variant %d collides with base key %q", i, base)
		}
	}
	if again := queryKey("d", 7, 1, 11, "match", []int{1, 2}, []float64{0.5, 0.25}); again != base {
		t.Errorf("identical params produced different keys: %q vs %q", again, base)
	}
}
