package hub

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"onex"
)

// batchQueries builds a mix of valid, perturbed and malformed queries.
func batchQueries(n int) [][]float64 {
	out := make([][]float64, 0, n+3)
	for i := 0; i < n; i++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = math.Sin(float64(j+i) / 3)
		}
		out = append(out, q)
	}
	// Malformed stragglers: must fail per-query, not whole-batch.
	out = append(out, nil, []float64{}, []float64{1, math.NaN()})
	return out
}

func TestMatchBatchPositionalAndCacheShared(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)

	qs := batchQueries(6)
	rs, err := ds.MatchBatch(context.Background(), qs, onex.MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(qs) {
		t.Fatalf("batch returned %d results for %d queries", len(rs), len(qs))
	}
	for i := 0; i < 6; i++ {
		if rs[i].Err != nil {
			t.Fatalf("query %d failed: %v", i, rs[i].Err)
		}
		if rs[i].Match.Length == 0 {
			t.Fatalf("query %d: zero match", i)
		}
	}
	for i := 6; i < len(qs); i++ {
		if rs[i].Err == nil {
			t.Fatalf("malformed query %d did not error", i)
		}
	}

	// A single Match for one of the batch queries must hit the cache the
	// batch populated, and a repeated batch must be all hits.
	hits0 := ds.Info().CacheHits
	if _, err := ds.Match(context.Background(), qs[0], onex.MatchAny, 1); err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().CacheHits; got != hits0+1 {
		t.Fatalf("single Match after batch: hits %d, want %d", got, hits0+1)
	}
	rs2, err := ds.MatchBatch(context.Background(), qs[:6], onex.MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs2 {
		a, b := rs2[i].Match, rs[i].Match
		if a.SeriesID != b.SeriesID || a.Start != b.Start || a.Length != b.Length || a.Distance != b.Distance {
			t.Fatalf("cached batch result %d differs: %+v vs %+v", i, a, b)
		}
	}
	if got := ds.Info().CacheHits; got != hits0+7 {
		t.Fatalf("repeat batch: hits %d, want %d", got, hits0+7)
	}
}

// TestMatchBatchRacesDropAndExtend hammers one dataset with concurrent
// batches while other goroutines Extend it and finally Drop it. Run under
// -race (the CI default): the invariants are no panic, no deadlock, and
// every batch either answers completely or fails with a lifecycle error.
func TestMatchBatchRacesDropAndExtend(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)

	qs := batchQueries(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, err := ds.MatchBatch(context.Background(), qs, onex.MatchAny)
				if err != nil {
					if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotReady) && !errors.Is(err, ErrFailed) {
						t.Errorf("unexpected batch error: %v", err)
					}
					continue
				}
				if len(rs) != len(qs) {
					t.Errorf("short batch: %d of %d", len(rs), len(qs))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			err := ds.Extend(testSeries(1, 24, int64(50+i)))
			if err != nil && !errors.Is(err, ErrConflict) {
				t.Errorf("extend: %v", err)
			}
		}
	}()
	if err := h.Drop("demo", false); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Post-drop batches fail cleanly with the dataset's terminal error —
	// the retained handle still answers (immutable base) per Dataset.Base
	// semantics, so just ensure no panic and a well-formed result.
	if _, err := ds.MatchBatch(context.Background(), qs, onex.MatchAny); err != nil &&
		!errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotReady) && !errors.Is(err, ErrFailed) {
		t.Fatalf("post-drop batch error: %v", err)
	}
}
