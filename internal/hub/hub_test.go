package hub

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"onex"
)

// testSeries builds a small clusterable dataset: noisy sinusoids.
func testSeries(n, length int, seed int64) []onex.Series {
	r := rand.New(rand.NewSource(seed))
	out := make([]onex.Series, n)
	for i := range out {
		v := make([]float64, length)
		phase := float64(i%2) * 0.7
		for j := range v {
			v[j] = math.Sin(float64(j)/3+phase) + 0.05*r.NormFloat64()
		}
		out[i] = onex.Series{Label: "s", Values: v}
	}
	return out
}

func testSpec(seed int64) Spec {
	return Spec{
		Series: testSeries(8, 24, seed),
		Opts:   onex.Options{ST: 0.3, Lengths: []int{4, 8, 12}, Seed: seed},
	}
}

func waitReady(t *testing.T, ds *Dataset) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ds.Wait(ctx); err != nil {
		t.Fatalf("dataset %q: %v", ds.Name(), err)
	}
}

func TestHubLifecycle(t *testing.T) {
	dir := t.TempDir()
	h := New(Config{SnapshotDir: dir})
	defer h.Close()

	ds, err := h.Register("demo", testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	if got := ds.State(); got != StateReady {
		t.Fatalf("state = %v", got)
	}
	if ds.Info().FromSnapshot {
		t.Error("fresh build marked FromSnapshot")
	}

	// Query every class.
	q := make([]float64, 8)
	for i := range q {
		q[i] = math.Sin(float64(i) / 3)
	}
	ms, err := ds.Match(context.Background(), q, onex.MatchExact, 1)
	if err != nil || len(ms) != 1 {
		t.Fatalf("Match = %v, %v", ms, err)
	}
	if _, err := ds.Range(context.Background(), q, 8, 0.5, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Seasonal(-1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Recommend(onex.Strict, -1); err != nil {
		t.Fatal(err)
	}

	// The build snapshotted to disk.
	snap := filepath.Join(dir, "demo.onex")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	// Drop, re-register: the snapshot short-circuits the rebuild.
	if err := h.Drop("demo", false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get("demo"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Drop: %v", err)
	}
	ds2, err := h.Register("demo", testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds2)
	info := ds2.Info()
	if !info.FromSnapshot {
		t.Error("re-register did not load from snapshot")
	}
	ms2, err := ds2.Match(context.Background(), q, onex.MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms2[0].Distance != ms[0].Distance || ms2[0].SeriesID != ms[0].SeriesID {
		t.Errorf("snapshot-loaded base answers differently: %+v vs %+v", ms2[0], ms[0])
	}

	// Drop with purge deletes the snapshot.
	if err := h.Drop("demo", true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("snapshot survived purge: %v", err)
	}
}

func TestHubRegisterFromExplicitSnapshot(t *testing.T) {
	dir := t.TempDir()
	h := New(Config{})
	defer h.Close()

	ds, err := h.Register("orig", testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	base, _, err := ds.Base()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "explicit.onex")
	if err := base.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	ds2, err := h.Register("copy", Spec{Snapshot: path})
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds2)
	if !ds2.Info().FromSnapshot {
		t.Error("explicit snapshot registration not marked FromSnapshot")
	}
}

func TestHubCacheHitsAndExtendInvalidation(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("c", testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)

	q := make([]float64, 8)
	for i := range q {
		q[i] = math.Sin(float64(i)/3) * 0.8
	}
	if _, err := ds.Match(context.Background(), q, onex.MatchAny, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ds.Match(context.Background(), q, onex.MatchAny, 3); err != nil {
			t.Fatal(err)
		}
	}
	info := ds.Info()
	if info.CacheHits != 4 || info.CacheMisses != 1 {
		t.Errorf("cache counters = %d hits / %d misses, want 4/1", info.CacheHits, info.CacheMisses)
	}
	if st := h.Stats(); st.Cache.Hits != 4 {
		t.Errorf("hub cache hits = %d, want 4", st.Cache.Hits)
	}

	// Extend bumps the generation and invalidates.
	if err := ds.Extend(testSeries(2, 24, 99)); err != nil {
		t.Fatal(err)
	}
	if g := ds.Generation(); g != 1 {
		t.Errorf("generation after Extend = %d, want 1", g)
	}
	if _, err := ds.Match(context.Background(), q, onex.MatchAny, 3); err != nil {
		t.Fatal(err)
	}
	info = ds.Info()
	if info.CacheMisses != 2 {
		t.Errorf("post-Extend misses = %d, want 2 (cache invalidated)", info.CacheMisses)
	}
	if info.Series != 10 {
		t.Errorf("series after Extend = %d, want 10", info.Series)
	}
}

func TestHubConcurrentMatchWhileExtend(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("hammer", testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)

	q := make([]float64, 8)
	for i := range q {
		q[i] = math.Sin(float64(i) / 3)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qq := append([]float64(nil), q...)
				qq[0] += float64(i%7) * 0.01 // mix hits and misses
				if _, err := ds.Match(context.Background(), qq, onex.MatchExact, 1); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		if err := ds.Extend(testSeries(1, 24, int64(100+i))); err != nil {
			t.Fatalf("extend %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if g := ds.Generation(); g != 3 {
		t.Errorf("generation = %d, want 3", g)
	}
}

func TestHubRegisterValidation(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	if _, err := h.Register("bad name!", testSpec(1)); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := h.Register("ok", Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := h.Register("ok", Spec{Generator: "ECG", Path: "x.tsv", Opts: onex.Options{ST: 0.2}}); err == nil {
		t.Error("two sources accepted")
	}
	if _, err := h.Register("ok", Spec{Generator: "ECG"}); err == nil {
		t.Error("missing ST accepted")
	}
	if _, err := h.Register("ok", Spec{Series: testSeries(2, 8, 1), Opts: onex.Options{ST: 0.2, Progress: func(int, int) {}}}); err == nil {
		t.Error("caller-supplied Progress accepted")
	}
	if _, err := h.Register("dup", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register("dup", testSpec(1)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register: %v", err)
	}
}

func TestHubBuildFailure(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	// A snapshot path that does not exist fails at build time, not register time.
	ds, err := h.Register("broken", Spec{Snapshot: "/no/such/file.onex"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ds.Wait(ctx); err == nil {
		t.Fatal("Wait on failed build returned nil")
	}
	if ds.State() != StateFailed {
		t.Fatalf("state = %v, want failed", ds.State())
	}
	if _, _, err := ds.Base(); !errors.Is(err, ErrFailed) {
		t.Errorf("Base on failed dataset: %v", err)
	}
	if _, err := ds.Match(context.Background(), []float64{1, 2}, onex.MatchAny, 1); !errors.Is(err, ErrFailed) {
		t.Errorf("Match on failed dataset: %v", err)
	}
	st := h.Stats()
	if st.ByState["failed"] != 1 {
		t.Errorf("Stats.ByState = %v", st.ByState)
	}
}

func TestHubQueryBeforeReady(t *testing.T) {
	h := New(Config{BuildWorkers: 1})
	defer h.Close()
	// Occupy the single worker so the second registration stays pending.
	slow, err := h.Register("slow", Spec{
		Series: testSeries(16, 64, 5),
		Opts:   onex.Options{ST: 0.3, Seed: 5}, // all lengths: slow enough
	})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := h.Register("pending", testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pending.Match(context.Background(), []float64{1, 2}, onex.MatchAny, 1); !errors.Is(err, ErrNotReady) {
		t.Errorf("Match before ready: %v", err)
	}
	waitReady(t, slow)
	waitReady(t, pending)
}

func TestHubClose(t *testing.T) {
	h := New(Config{BuildWorkers: 1})
	ds, err := h.Register("d", testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	h.Close()
	h.Close() // idempotent
	if _, err := h.Register("late", testSpec(8)); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close: %v", err)
	}
	// Ready datasets keep answering after Close.
	if _, err := ds.Match(context.Background(), make([]float64, 8), onex.MatchExact, 1); err != nil {
		t.Errorf("query after Close: %v", err)
	}
}

func TestHubCloseAbortsQueuedBuilds(t *testing.T) {
	h := New(Config{BuildWorkers: 1})
	slow, err := h.Register("slow", Spec{
		Series: testSeries(16, 64, 9),
		Opts:   onex.Options{ST: 0.3, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := h.Register("queued", testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Both datasets must reach a terminal state: the queued one fails with
	// ErrClosed; the in-flight one either finished or was canceled.
	if err := queued.Wait(ctx); err == nil && queued.State() != StateReady {
		t.Error("queued dataset left in limbo")
	}
	_ = slow.Wait(ctx)
	if s := slow.State(); s != StateReady && s != StateFailed {
		t.Errorf("in-flight dataset state after Close = %v", s)
	}
}

// TestCacheNotResurrectedAcrossReRegister covers the in-flight-put race:
// a slow query against the old incarnation finishes its cache put after
// Drop purged, and a new dataset under the same name must never be served
// that entry (epochs make the keys disjoint).
func TestCacheNotResurrectedAcrossReRegister(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds1, err := h.Register("name", testSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds1)
	q := make([]float64, 8)
	for i := range q {
		q[i] = 0.3
	}
	if _, err := ds1.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	base1, _, err := ds1.Base()
	if err != nil {
		t.Fatal(err)
	}
	staleKey := queryKey("name", ds1.epoch, 0, base1.LayoutSignature(), "match", []int{int(onex.MatchExact), 1}, q)

	if err := h.Drop("name", true); err != nil {
		t.Fatal(err)
	}
	// The late put lands after Drop's purge.
	h.cache.put(staleKey, []onex.Match{{SeriesID: -999}})

	ds2, err := h.Register("name", testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds2)
	if ds2.epoch == ds1.epoch {
		t.Fatal("re-registration reused the epoch")
	}
	ms, err := ds2.Match(context.Background(), q, onex.MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SeriesID == -999 {
		t.Fatal("re-registered dataset served the dropped incarnation's cached result")
	}
}

func TestHubDropNotFound(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	if err := h.Drop("ghost", false); !errors.Is(err, ErrNotFound) {
		t.Errorf("Drop ghost: %v", err)
	}
}
