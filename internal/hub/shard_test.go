package hub

import (
	"context"
	"testing"

	"onex"
)

// shardedSpec is testSpec with an explicit shard layout.
func shardedSpec(seed int64, shards int) Spec {
	sp := testSpec(seed)
	sp.Opts.Shards = shards
	return sp
}

// TestShardLayoutInCacheKeys is the regression test for the shard-layout
// cache-key rule: re-registering the same data under a different `shards`
// value must never serve a stale cached answer, even when an entry from the
// old incarnation survives every purge (the in-flight-put race). Epochs
// already make the keys disjoint; the layout signature keeps them disjoint
// even if an epoch were ever reused, and this test pins both properties.
func TestShardLayoutInCacheKeys(t *testing.T) {
	h := New(Config{})
	defer h.Close()

	ds1, err := h.Register("name", shardedSpec(33, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds1)
	base1, gen1, err := ds1.Base()
	if err != nil {
		t.Fatal(err)
	}
	if got := base1.Shards(); got != 2 {
		t.Fatalf("first incarnation serves %d shards, want 2", got)
	}
	q := make([]float64, 8)
	for i := range q {
		q[i] = 0.4
	}
	if _, err := ds1.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}

	// Poison: a stale entry keyed like the OLD layout but under the NEW
	// epoch+generation, surviving Drop's purge. Only the layout signature in
	// the key separates the incarnations now.
	if err := h.Drop("name", true); err != nil {
		t.Fatal(err)
	}
	ds2, err := h.Register("name", shardedSpec(33, 4))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds2)
	base2, gen2, err := ds2.Base()
	if err != nil {
		t.Fatal(err)
	}
	if got := base2.Shards(); got != 4 {
		t.Fatalf("second incarnation serves %d shards, want 4", got)
	}
	if base1.LayoutSignature() == base2.LayoutSignature() {
		t.Fatal("different shard layouts over the same data share a layout signature")
	}
	poisoned := queryKey("name", ds2.epoch, gen2, base1.LayoutSignature(),
		"match", []int{int(onex.MatchExact), 1}, q)
	h.cache.put(poisoned, []onex.Match{{SeriesID: -999}})

	ms, err := ds2.Match(context.Background(), q, onex.MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SeriesID == -999 {
		t.Fatal("re-registered dataset served a stale answer cached under the old shard layout")
	}
	_ = gen1

	// And the two layouts answer identically — re-sharding is transparent.
	direct, err := base1.BestMatch(q, onex.MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if direct.SeriesID != ms[0].SeriesID || direct.Start != ms[0].Start {
		t.Fatalf("layouts disagree: 2 shards → %+v, 4 shards → %+v", direct, ms[0])
	}
}

// TestShardStatsThroughInfo checks the per-shard observability surfaces in
// the dataset Info and the hub-wide maintenance stats.
func TestShardStatsThroughInfo(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("sharded", shardedSpec(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	info := ds.Info()
	if info.Shards != 3 {
		t.Errorf("Info.Shards = %d, want 3", info.Shards)
	}
	if len(info.ShardStats) != 3 {
		t.Fatalf("Info.ShardStats has %d entries, want 3", len(info.ShardStats))
	}
	series, subseq := 0, int64(0)
	for _, sh := range info.ShardStats {
		series += sh.Series
		subseq += sh.Subsequences
	}
	if series != info.Series {
		t.Errorf("per-shard series sum %d != %d", series, info.Series)
	}
	if subseq != info.Subsequences {
		t.Errorf("per-shard subsequence sum %d != %d", subseq, info.Subsequences)
	}

	st := h.Stats()
	m, ok := st.Maintenance["sharded"]
	if !ok {
		t.Fatal("hub stats missing maintenance entry for ready dataset")
	}
	if m.Shards != 3 || m.Drift != 0 || m.Rebuilds != 0 {
		t.Errorf("maintenance stats = %+v", m)
	}
}
