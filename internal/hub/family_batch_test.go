package hub

import (
	"context"
	"math"
	"testing"

	"onex"
)

// TestKNNBatchEquivalenceAndCacheSharing pins the KNNBatch contract: items
// are positional, K ≤ 1 answers are bit-identical to single Match answers
// (shared cache keys included), and K > 1 answers equal BestKMatches.
func TestKNNBatchEquivalenceAndCacheSharing(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)

	mk := func(i int) []float64 {
		q := make([]float64, 8)
		for j := range q {
			q[j] = math.Cos(float64(j+i) / 2)
		}
		return q
	}
	qs := []onex.KNNQuery{
		{Query: mk(0), Mode: onex.MatchAny, K: 1},
		{Query: mk(1), Mode: onex.MatchExact, K: 3},
		{Query: mk(2), Mode: onex.MatchAny, K: 0}, // normalized to 1
		{Query: nil, Mode: onex.MatchAny, K: 2},   // fails alone
	}
	rs, err := ds.KNNBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(qs) {
		t.Fatalf("batch returned %d results for %d items", len(rs), len(qs))
	}
	if rs[3].Err == nil {
		t.Fatal("malformed item did not fail")
	}
	for i := 0; i < 3; i++ {
		if rs[i].Err != nil {
			t.Fatalf("item %d failed: %v", i, rs[i].Err)
		}
	}
	if len(rs[1].Matches) != 3 {
		t.Fatalf("K=3 item returned %d matches", len(rs[1].Matches))
	}

	// Singles must hit the entries the batch populated, and agree exactly.
	hits0 := ds.Info().CacheHits
	single, err := ds.Match(context.Background(), qs[0].Query, onex.MatchAny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().CacheHits; got != hits0+1 {
		t.Fatalf("single Match after batch: hits %d, want %d", got, hits0+1)
	}
	if a, b := single[0], rs[0].Matches[0]; a.SeriesID != b.SeriesID || a.Start != b.Start || a.Distance != b.Distance {
		t.Fatalf("K=1 batch item differs from single Match: %+v vs %+v", b, a)
	}
	kres, err := ds.Match(context.Background(), qs[1].Query, onex.MatchExact, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().CacheHits; got != hits0+2 {
		t.Fatalf("single k-NN after batch: hits %d, want %d", got, hits0+2)
	}
	for j := range kres {
		a, b := kres[j], rs[1].Matches[j]
		if a.SeriesID != b.SeriesID || a.Start != b.Start || a.Distance != b.Distance {
			t.Fatalf("K=3 batch item %d differs from single: %+v vs %+v", j, b, a)
		}
	}
}

// TestRangeAndSeasonalBatchCacheSharing pins the remaining family batches:
// positional results, per-item errors, singles hitting batch-populated
// entries.
func TestRangeAndSeasonalBatchCacheSharing(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	base, _, err := ds.Base()
	if err != nil {
		t.Fatal(err)
	}
	length := base.Lengths()[0]
	q := make([]float64, length)
	for j := range q {
		q[j] = math.Sin(float64(j) / 3)
	}

	rrs, err := ds.RangeBatch(context.Background(), []onex.RangeQuery{
		{Query: q, Length: length, Radius: 0.5},
		{Query: q, Length: length, Radius: 0.5, Exact: true},
		{Query: q, Length: -1, Radius: 0.5}, // unindexed length fails alone
	})
	if err != nil {
		t.Fatal(err)
	}
	if rrs[0].Err != nil || rrs[1].Err != nil {
		t.Fatalf("range items failed: %v / %v", rrs[0].Err, rrs[1].Err)
	}
	if rrs[2].Err == nil {
		t.Fatal("unindexed-length item did not fail")
	}

	hits0 := ds.Info().CacheHits
	if _, err := ds.Range(context.Background(), q, length, 0.5, true); err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().CacheHits; got != hits0+1 {
		t.Fatalf("single exact Range after batch: hits %d, want %d", got, hits0+1)
	}

	srs, err := ds.SeasonalBatch([]onex.SeasonalQuery{
		{SeriesID: 0, Length: length},
		{SeriesID: -1, Length: length},
		{SeriesID: 0, Length: -7}, // unindexed length fails alone
	})
	if err != nil {
		t.Fatal(err)
	}
	if srs[0].Err != nil || srs[1].Err != nil {
		t.Fatalf("seasonal items failed: %v / %v", srs[0].Err, srs[1].Err)
	}
	if srs[2].Err == nil {
		t.Fatal("unindexed-length seasonal item did not fail")
	}
	hits1 := ds.Info().CacheHits
	if _, err := ds.Seasonal(-3, length); err != nil { // any negative id = dataset-wide
		t.Fatal(err)
	}
	if got := ds.Info().CacheHits; got != hits1+1 {
		t.Fatalf("single SeasonalAll after batch: hits %d, want %d", got, hits1+1)
	}
}

// TestCacheKeysCoverQueryOptions is the poisoned-key regression test for
// the option-aliasing audit: k, radius and the exact flag are all part of
// the cache key, so an answer cached under one option set can never be
// served for another. Each case plants a sentinel under the would-be
// aliasing key and asserts the differently-optioned query does not see it —
// and that the correctly-optioned lookup does, proving the planted key is
// exactly the one the builder produces.
func TestCacheKeysCoverQueryOptions(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	base, gen, err := ds.Base()
	if err != nil {
		t.Fatal(err)
	}
	scope := ds.scope(base, gen)
	length := base.Lengths()[0]
	q := make([]float64, length)
	for j := range q {
		q[j] = math.Sin(float64(j) / 4)
	}
	sentinel := []onex.Match{{SeriesID: -999}}

	// k: a k=2 answer must never serve a k=1 query.
	h.cache.put(matchKey(scope, int(onex.MatchExact), 2, q), sentinel)
	ms, err := ds.Match(context.Background(), q, onex.MatchExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SeriesID == -999 {
		t.Fatal("k=1 query served the k=2 cache entry")
	}
	if v, ok := h.cache.get(matchKey(scope, int(onex.MatchExact), 2, q)); !ok || v.([]onex.Match)[0].SeriesID != -999 {
		t.Fatal("planted k=2 sentinel is not where matchKey points")
	}

	// exact flag: an inexact range answer must never serve an exact query.
	rsent := []onex.RangeMatch{{Match: onex.Match{SeriesID: -999}}}
	h.cache.put(rangeKey(scope, length, 0.4, false, q), rsent)
	rm, err := ds.Range(context.Background(), q, length, 0.4, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rm {
		if m.SeriesID == -999 {
			t.Fatal("exact range query served the inexact cache entry")
		}
	}

	// radius: a radius=0.4 answer must never serve radius=0.8.
	h.cache.put(rangeKey(scope, length, 0.4, true, q), rsent)
	rm, err = ds.Range(context.Background(), q, length, 0.8, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rm {
		if m.SeriesID == -999 {
			t.Fatal("radius=0.8 query served the radius=0.4 cache entry")
		}
	}

	// family: a match answer must never alias a range or seasonal key even
	// at identical parameter hashes (kind strings separate them).
	if matchKey(scope, 0, 1, q) == rangeKey(scope, 0, 1, false, q[:len(q)-1]) {
		t.Fatal("match and range keys can collide")
	}
	if seasonalKey(scope, 0, length) == recommendKey(scope, 0, length) {
		t.Fatal("seasonal and recommend keys can collide")
	}
}

// TestQueryCountersThroughInfo checks the bound-pruning work tally surfaces
// through Dataset.Info and the hub-wide stats.
func TestQueryCountersThroughInfo(t *testing.T) {
	h := New(Config{})
	defer h.Close()
	ds, err := h.Register("demo", testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, ds)
	base, _, err := ds.Base()
	if err != nil {
		t.Fatal(err)
	}
	length := base.Lengths()[0]
	q := make([]float64, length)
	for j := range q {
		q[j] = math.Cos(float64(j) / 5)
	}
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Range(context.Background(), q, length, 0.3, false); err != nil {
		t.Fatal(err)
	}
	info := ds.Info()
	if info.Query.Queries < 2 {
		t.Fatalf("query counter = %d, want ≥ 2", info.Query.Queries)
	}
	if info.Query.RepsExamined == 0 {
		t.Fatal("best-match query did not record examined representatives")
	}
	st := h.Stats()
	if st.Query.Queries < info.Query.Queries {
		t.Fatalf("hub stats query tally %d < dataset tally %d", st.Query.Queries, info.Query.Queries)
	}

	// Cache hits must not tick the work tally (the base never ran).
	before := ds.Info().Query.Queries
	if _, err := ds.Match(context.Background(), q, onex.MatchExact, 1); err != nil {
		t.Fatal(err)
	}
	if got := ds.Info().Query.Queries; got != before {
		t.Fatalf("cache hit ticked the query tally: %d → %d", before, got)
	}
}
