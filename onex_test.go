package onex

import (
	"math"
	"sync"
	"testing"
)

// sineSeries builds test inputs with controlled shapes: phase-shifted
// sinusoids plus one outlier ramp.
func sineSeries(n, length int) []Series {
	out := make([]Series, 0, n+1)
	for s := 0; s < n; s++ {
		v := make([]float64, length)
		for i := range v {
			v[i] = math.Sin(2*math.Pi*float64(i)/16 + float64(s)*0.2)
		}
		out = append(out, Series{Label: "sine", Values: v})
	}
	ramp := make([]float64, length)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	out = append(out, Series{Label: "ramp", Values: ramp})
	return out
}

func buildFixture(t *testing.T, opts Options) *Base {
	t.Helper()
	if opts.ST == 0 {
		opts.ST = 0.2
	}
	if opts.Lengths == nil {
		opts.Lengths = []int{8, 16, 24}
	}
	b, err := Build("fixture", sineSeries(6, 48), opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("x", nil, Options{ST: 0.2}); err == nil {
		t.Error("no series: want error")
	}
	if _, err := Build("x", sineSeries(2, 32), Options{}); err == nil {
		t.Error("zero ST: want error")
	}
	if _, err := Build("x", sineSeries(2, 32), Options{ST: -0.5}); err == nil {
		t.Error("negative ST: want error")
	}
	if _, err := Build("x", sineSeries(2, 32), Options{ST: 0.2, CandidateLimit: -1}); err == nil {
		t.Error("negative candidate limit: want error")
	}
	if _, err := Build("x", []Series{{Values: []float64{math.NaN()}}}, Options{ST: 0.2}); err == nil {
		t.Error("NaN data: want error")
	}
	if _, err := Build("x", sineSeries(2, 32), Options{ST: 0.2, Normalize: NormalizeMode(99)}); err == nil {
		t.Error("bad normalize mode: want error")
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	in := sineSeries(2, 32)
	orig := append([]float64(nil), in[0].Values...)
	if _, err := Build("x", in, Options{ST: 0.2, Lengths: []int{8}}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if in[0].Values[i] != orig[i] {
			t.Fatal("Build mutated caller's data")
		}
	}
}

func TestBestMatchExactAndAny(t *testing.T) {
	b := buildFixture(t, Options{})
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	// The query is shaped like the sines but on the raw scale; the base is
	// normalized, so BestMatch still finds a close warped match.
	m, err := b.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if !found(m) || m.Length != 16 {
		t.Fatalf("exact match = %+v", m)
	}
	if len(m.Values) != 16 {
		t.Errorf("match values length %d", len(m.Values))
	}
	any, err := b.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if !found(any) {
		t.Fatal("any match missing")
	}
	if any.Distance > m.Distance+1e-9 {
		t.Errorf("MatchAny (%v) worse than MatchExact (%v)", any.Distance, m.Distance)
	}
}

func found(m Match) bool { return m.Length > 0 }

func TestBestMatchErrors(t *testing.T) {
	b := buildFixture(t, Options{})
	if _, err := b.BestMatch(nil, MatchExact); err == nil {
		t.Error("empty query: want error")
	}
	if _, err := b.BestMatch(make([]float64, 7), MatchExact); err == nil {
		t.Error("unindexed length: want error")
	}
}

func TestSeasonal(t *testing.T) {
	// A sinusoid repeats every 16 samples: series 0 has recurring length-16
	// patterns at phase-equivalent offsets.
	b := buildFixture(t, Options{})
	ps, err := b.Seasonal(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no recurring patterns for a periodic series")
	}
	for _, p := range ps {
		if len(p.Occurrences) < 2 {
			t.Errorf("pattern with %d occurrences", len(p.Occurrences))
		}
		if p.Length != 16 || len(p.Representative) != 16 {
			t.Errorf("pattern shape wrong: %+v", p)
		}
		for _, o := range p.Occurrences {
			if o.SeriesID != 0 {
				t.Errorf("Seasonal(0) returned occurrence in series %d", o.SeriesID)
			}
		}
	}
	all, err := b.SeasonalAll(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(ps) {
		t.Errorf("SeasonalAll (%d) returned fewer patterns than Seasonal (%d)", len(all), len(ps))
	}
	if _, err := b.Seasonal(0, 5); err == nil {
		t.Error("unindexed length: want error")
	}
	if _, err := b.Seasonal(-2, 16); err == nil {
		t.Error("bad series: want error")
	}
}

func TestRecommendThreshold(t *testing.T) {
	b := buildFixture(t, Options{})
	s, err := b.RecommendThreshold(Strict, -1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.RecommendThreshold(Medium, -1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := b.RecommendThreshold(Loose, -1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Low != 0 || s.High != m.Low || m.High != l.Low || !math.IsInf(l.High, 1) {
		t.Errorf("ranges not contiguous: S=%v M=%v L=%v", s, m, l)
	}
	if !s.Contains(s.High) || s.Contains(l.Low+1) {
		t.Error("Range.Contains wrong")
	}
	st := b.Stats()
	if b.DegreeOf(0) != Strict {
		t.Error("DegreeOf(0) != Strict")
	}
	if b.DegreeOf(st.STFinal+1) != Loose {
		t.Error("DegreeOf(very large) != Loose")
	}
	if _, err := b.RecommendThreshold(Degree(9), -1); err == nil {
		t.Error("bad degree: want error")
	}
	if _, err := b.RecommendThreshold(Strict, 12345); err == nil {
		t.Error("unindexed length: want error")
	}
	// Local recommendation for an indexed length works.
	if _, err := b.RecommendThreshold(Strict, 16); err != nil {
		t.Errorf("local recommendation failed: %v", err)
	}
}

func TestWithThreshold(t *testing.T) {
	b := buildFixture(t, Options{})
	tighter, err := b.WithThreshold(b.ST() / 2)
	if err != nil {
		t.Fatal(err)
	}
	looser, err := b.WithThreshold(b.ST() * 3)
	if err != nil {
		t.Fatal(err)
	}
	if tighter.Stats().Representatives < b.Stats().Representatives {
		t.Error("splitting lost groups")
	}
	if looser.Stats().Representatives > b.Stats().Representatives {
		t.Error("merging gained groups")
	}
	// Original base unchanged and still queryable.
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	if _, err := b.BestMatch(q, MatchExact); err != nil {
		t.Errorf("original base broken after adaptation: %v", err)
	}
	if _, err := looser.BestMatch(q, MatchExact); err != nil {
		t.Errorf("adapted base cannot answer: %v", err)
	}
	if _, err := b.WithThreshold(-1); err == nil {
		t.Error("negative ST': want error")
	}
}

func TestStats(t *testing.T) {
	b := buildFixture(t, Options{})
	st := b.Stats()
	if st.Representatives <= 0 || st.Subsequences <= 0 || st.IndexBytes <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.STHalf > st.STFinal {
		t.Errorf("STHalf %v > STFinal %v", st.STHalf, st.STFinal)
	}
	if st.BuildTime <= 0 {
		t.Errorf("BuildTime = %v", st.BuildTime)
	}
	ls := b.Lengths()
	if len(ls) != 3 || ls[0] != 8 {
		t.Errorf("Lengths() = %v", ls)
	}
	// Returned slice is a copy.
	ls[0] = 999
	if b.Lengths()[0] == 999 {
		t.Error("Lengths() exposes internal slice")
	}
}

func TestConcurrentQueries(t *testing.T) {
	b := buildFixture(t, Options{})
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if _, err := b.BestMatch(q, MatchAny); err != nil {
					errs <- err
				}
				if _, err := b.Seasonal(0, 16); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDegreeString(t *testing.T) {
	if Strict.String() != "S" || Medium.String() != "M" || Loose.String() != "L" || Degree(7).String() != "?" {
		t.Error("Degree.String mismatch")
	}
}

func TestMatchString(t *testing.T) {
	m := Match{SeriesID: 2, Start: 5, Length: 8, Distance: 0.125}
	if got := m.String(); got != "(X2)^8_5 dist=0.1250" {
		t.Errorf("Match.String() = %q", got)
	}
}

func TestNormalizeModes(t *testing.T) {
	series := sineSeries(3, 32)
	for _, mode := range []NormalizeMode{NormalizeDataset, NormalizePerSeries, NormalizeNone} {
		b, err := Build("m", series, Options{ST: 0.2, Lengths: []int{8}, Normalize: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if b.Stats().Representatives == 0 {
			t.Errorf("mode %d: no groups", mode)
		}
	}
}
