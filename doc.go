// Package onex reproduces ONEX (Neamtu et al., PVLDB 10(3), 2016):
// interactive time-series exploration powered by the marriage of
// similarity distances — cheap Euclidean-distance grouping offline,
// DTW-based exploration online.
//
// # Quick start
//
// CI (.github/workflows/ci.yml, "CI" badge once the repo has a canonical
// remote): every push runs gofmt, go vet, the race-enabled test suite on
// Go 1.22/1.23, and a one-iteration benchmark smoke pass.
//
// Build and test from a clean checkout (no dependencies beyond the Go
// toolchain):
//
//	go build ./...      # compile every package and binary
//	go test ./...       # full test suite
//	make ci             # the exact CI gate: fmt-check, vet, build,
//	                    # race tests, bench smoke
//
// Explore a dataset end to end:
//
//	go run ./examples/quickstart
//
// The distance kernel everything sits on lives in internal/dist: ED/DTW
// with the paper's normalizations, LB_Kim/LB_Keogh lower bounds with
// early abandoning, warping envelopes, and an allocation-reusing DTW
// workspace whose unconstrained path is a cache-blocked fused-row-pair
// kernel — bit-identical to the plain two-row recurrence (locked by a
// 2000-trial exact-equality test) and measured at a ~1.3× geomean
// single-core speedup by the committed BENCH_kernel.json (`make
// bench-kernel`, CI: bench-kernel). Run the package benchmarks with:
//
//	go test -bench . -run '^$' ./internal/dist
//
// # Parallel execution
//
// Both stages shard across a bounded worker pool (internal/parallel). The
// offline build parallelizes across subsequence lengths and across
// series-chunks within a length with a deterministic merge, so a fixed
// seed yields an identical base at every worker count. Online queries fan
// the representative scan and group mining out with a shared atomic
// best-so-far bound and pooled DTW workspaces; the parallel paths are
// answer-invariant — BestMatch/BestKMatches/RangeSearch return identical
// results at every setting (proven by the equivalence suites in
// internal/query and internal/grouping, enforced ≥ 70% covered in CI).
//
//	base, _ := onex.Build("demo", series, onex.Options{
//		ST:          0.2,
//		Parallelism: 0, // 0 = GOMAXPROCS; 1 forces sequential
//	})
//	m, _ := base.BestMatch(q, onex.MatchAny)     // one query, many workers
//	rs := base.BestMatchBatch(qs, onex.MatchAny) // many queries at once
//	for _, r := range rs {
//		// r.Match answers its query; r.Err is per-query (ragged/NaN
//		// inputs fail alone, identical to the single-call behaviour).
//	}
//
// `make bench-parallel` (CI: the bench-parallel job) emits
// BENCH_parallel.json, the sequential-vs-parallel sweep of build, single
// queries and batches at worker counts 1..GOMAXPROCS with an equivalence
// check baked in.
//
// # Streaming ingestion
//
// Bases grow in two directions without rebuilding. Extend adds whole new
// series; Append (new) streams points onto an existing series — the live-
// traffic shape where sensors and tickers deliver observations
// continuously. Only the suffix subsequences whose windows overlap the
// appended points are pushed through Algorithm 1's nearest-representative
// assignment, and the index layers (Dc rows, envelopes, visit orders)
// refresh incrementally for the touched groups, so absorbing a point batch
// costs O(new-windows × groups × length) — the committed BENCH_stream.json
// measures it at 5–13× cheaper than a rebuild, widening with base size.
//
//	grown, err := base.Append(seriesID, 0.41, 0.43, 0.40) // new points
//	grown.Drift()                                         // incremental fraction
//
// Both paths return a fresh *Base and leave the receiver untouched, so
// in-flight queries never block (internal/hub swaps the pointer under a
// generation counter and re-snapshots to disk). Incremental assignment
// never splits or re-shuffles existing groups, so the grouping slowly
// drifts from what a from-scratch build would produce; the engine tracks
// that drift and, once an append or extend would push it past
// Options.RebuildDrift (default 0.25), transparently re-runs the full
// offline construction over the final data — equal to a from-scratch Build
// over the (pinned) indexed length set — and resets it. The
// equivalence bar is enforced by the append-vs-rebuild property suite:
// after any Append/Extend interleaving, RangeSearchExact answers match a
// from-scratch Build over the final data within 1e-12, and the rebuild
// branch reproduces the from-scratch base exactly.
// `make bench-stream` (CI: bench-stream) regenerates the sweep.
//
// # Sharded serving
//
// Options.Shards hash-partitions one dataset's series across N engine
// shards (internal/shard), each holding its own GTI/LSI index layers — the
// O(g²) inter-representative matrix, envelopes and scan orders — over just
// its series, derived concurrently on the worker pool and queried by
// scatter-gather: the representative scan fans across shard-owned groups
// with a shared atomic best-so-far bound (each global group is scanned by
// exactly one shard), range search runs verbatim per shard and concatenates,
// and group mining replays the global pivot walk. The similarity grouping
// itself stays global and deterministic — ONEX's query semantics are
// grouping-dependent, so independent per-shard groupings would change
// answers — which is what makes sharding a pure scale knob:
//
//	base, _ := onex.Build("big", series, onex.Options{ST: 0.2, Shards: 8})
//
// answers BestMatch / BestKMatches / RangeSearch(Exact) / Seasonal
// identically to Shards: 0 (the single-engine path, bit-compatible with
// previous releases), enforced by the layout-equivalence property suite in
// internal/shard (random datasets, query mixes and Append/Extend
// interleavings at Parallelism 1 and 8, under -race). The SP-Space
// guidance surface — RecommendThreshold, DegreeOf, Stats.STHalf/STFinal —
// is likewise computed from the one global grouping (via an on-demand
// inter-representative distance oracle, so no global O(g²) matrix is ever
// materialized) and is bit-identical at every shard count. Caveats: two
// representatives tying on bit-equal DTW resolve by scan order, which
// differs between layouts (impossible on continuous data), and
// WithThreshold requires an unsharded base. Appends and extends route
// deterministically — series → shard is a pure hash — and refresh only the
// shards whose series or groups the step touched; snapshots persist the
// global payload plus the layout in one stream (format v5 adds the DcTopK
// retention setting; v3 snapshots load as one shard, v4 and earlier with
// the default retention) and re-derive the shards on load. Stats().PerShard,
// the hub Info and /v1/datasets/{name}/stats report the per-shard series/
// group/byte populations; `make bench-shard` (CI: bench-shard) emits
// BENCH_shard.json sweeping shard counts 1/2/4/8 over a homogeneous and a
// heterogeneous population with the unsharded-equivalence check baked in.
//
// # Index memory
//
// The one index layer that grew quadratically with the grouping — the
// per-length inter-representative distance matrix Dc (Def. 10), O(g²)
// per indexed length — is stored sparsely: each representative retains
// only its Options.DcTopK nearest entries (default 32; negative retains
// all) plus its exact row sum. This is safe because the dense matrix is
// consumed ONLY at build time — the row sums, scan orders and merge
// thresholds it feeds are stored exactly, and every query path that needs
// an inter-representative distance recomputes it on demand from the
// representatives — so retention is purely a memory knob: every query
// answer, recommendation and maintenance result is bit-identical at every
// DcTopK setting, enforced by the package-level sparse-vs-dense
// equivalence property suite across sequential/parallel execution and
// unsharded/sharded layouts. Stats().IndexBytes reflects the sparse
// layout, so the memory saving is observable per dataset and per shard.
//
// # Serving
//
// cmd/onex-server exposes bases over HTTP through internal/hub, a
// concurrent multi-dataset catalog: datasets register at runtime
// (POST /v1/datasets), build asynchronously on a bounded worker pool with
// per-dataset lifecycle state (pending → building → ready/failed) and
// build progress (Options.Progress / Options.Cancel), persist to disk as
// snapshots (Base.SaveFile / onex.LoadFile) for instant reload, extend
// incrementally while queries keep running, and answer repeated queries
// from a bounded LRU result cache keyed on the dataset generation and
// shard layout. Per-dataset drift/rebuild counters and per-shard sizes
// surface on /v1/stats and /v1/datasets/{name}/stats, so the amortized
// rebuild policy is tunable from data. See
// cmd/onex-server/README.md for the full v1 API with curl examples, and
//
//	go run ./examples/hub
//
// for the hub driven directly from Go. The serve-smoke CI job (also
// `make serve-smoke`) boots the server end to end, and `make bench-serve`
// emits BENCH_serve.json comparing cold vs cached /match latency.
//
// # Distributed serving
//
// Every shard interaction inside the scatter-gather engine goes through
// one seam, query.ShardTransport (Info / ScanBest / ScanFixed /
// EvalMembers / Range / Stats / Close). The in-process engine is the
// `local` transport (query.LocalShard); internal/shardrpc supplies the
// `remote` one: `onex-server -role worker` serves per-shard REST
// endpoints, and the coordinator — given Options.ShardWorkers (or the
// server's -shard-workers flag) — computes the global grouping once,
// ships each shard's series and owned groups to a worker keyed by
// (dataset, generation, shard), and fans queries out with the same
// bounds-as-hints protocol the local path uses. Because the coordinator
// replays the monolithic decision procedure over transport answers, and
// ±Inf-capable floats travel as math.Float64bits, a worker-served base
// answers the full query mix bit-identically to the in-process engine —
// including through mid-query worker restarts: shipping is idempotent on
// the (dataset, generation, shard) key, so a client that sees
// 404/unknown_generation re-ships the spec and retries, with per-call
// timeouts and bounded backoff throughout (a worker down past the retry
// budget surfaces as shardrpc.ErrUnavailable → HTTP 503). The remote
// equivalence property suite in internal/shard locks all of this in
// across parallelism and shard-count layouts under -race, worker
// kill/restart included. See docs/api.md for the worker wire protocol
// and cmd/onex-server/README.md for running a worker fleet;
// `make dist-smoke` boots two workers plus a coordinator and
// cross-checks answers against an unsharded server end to end.
package onex

// Paper-to-code glossary. The implementation follows the paper's notation
// (Neamtu et al., PVLDB 10(3), 2016) wherever Go allows; this table maps the
// paper's symbols to the identifiers that realize them.
//
//	Paper                         Code
//	-----                         ----
//	X = (x1…xn), dataset D        ts.Series, ts.Dataset
//	(Xp)^i_j  (Def. 1)            ts.Subseq{Series p, Start j, Length i};
//	                              grouping.Member inside groups
//	ED, ED̄ (Defs. 2, 5)           dist.ED, dist.NormalizedED
//	DTW, DTW̄ (Defs. 3, 6)         dist.DTW, dist.NormalizedDTW (÷2·max(n,m))
//	warping path P, w(P)          dist.DTWPath, dist.PathPoint
//	similarity threshold ST       Options.ST / Base.ST()
//	similarity group G^i_k        grouping.Group (Def. 8: same length,
//	                              ED̄ to rep ≤ ST/2, nearest rep)
//	representative R^i_k (Def. 7) grouping.Group.Rep (point-wise average)
//	R-Space (Def. 9)              rspace.Base
//	Dc (Def. 10)                  rspace.LengthEntry.TopK (sparse top-k
//	                              rows; dense Dc is build-time scratch)
//	GTI (Sec. 4.3)                rspace.LengthEntry (group vector, TopK,
//	                              Sums/SumOrder/MedianOrder, STHalf/STFinal)
//	LSI (Sec. 4.3)                grouping.Group.Members (ED-sorted) +
//	                              rspace.LengthEntry.Envelopes
//	SP-Space, SThalf/STfinal      rspace SThalf/STFinal per length;
//	(Sec. 4.2, Fig. 1)            Base.RecommendThreshold, Base.DegreeOf
//	S/M/L similarity degrees      onex.Strict / Medium / Loose
//	Algorithm 1                   grouping.Build (+ grouping.Extend /
//	                              grouping.AppendPoints for incremental
//	                              maintenance)
//	Algorithm 2.A (Q1)            Base.BestMatch / BestKMatches
//	Algorithm 2.B (Q2)            Base.Seasonal / SeasonalAll
//	Algorithm 2.C (vary ST′)      Base.WithThreshold
//	Lemma 1                       tested in grouping (pairwise ≤ ST)
//	Lemma 2 (ED↔DTW triangle)     the MatchAny early-stop rule and
//	                              RangeSearch wholesale admission
//	LB_Kim, LB_Keogh (Sec. 5.3)   dist.LBKim, dist.LBKeogh(+Ordered)
//	early abandoning (Sec. 5.3)   dist.Workspace.DTWEarlyAbandon,
//	                              dist.SquaredEDEarlyAbandon
//	Trillion [22]                 baseline.Trillion
//	PAA / PDTW [19]               baseline.PAA
//	Standard DTW                  baseline.BruteForce
