// Package onex is a Go implementation of ONEX — "Interactive Time Series
// Exploration Powered by the Marriage of Similarity Distances" (Neamtu,
// Ahsan, Rundensteiner, Sarkozy; PVLDB 10(3), 2016).
//
// ONEX answers time-warped similarity queries interactively by splitting the
// work between two distances: an offline pass clusters every subsequence of
// the dataset into compact similarity groups using the cheap Euclidean
// distance, and online queries then explore only the group representatives
// with Dynamic Time Warping. A proven ED↔DTW triangle inequality (paper
// Lemma 2) guarantees that a representative within ST/2 of the query vouches
// for its whole group.
//
// # Quick start
//
//	base, err := onex.Build("demo", series, onex.Options{ST: 0.2})
//	if err != nil { ... }
//	match, err := base.BestMatch(query, onex.MatchAny)       // Q1
//	patterns, err := base.Seasonal(seriesID, 30)             // Q2
//	rng, err := base.RecommendThreshold(onex.Strict, -1)     // Q3
//	looser, err := base.WithThreshold(0.4)                   // Sec. 5.2
//
// The package is stdlib-only and safe for concurrent queries against a
// built Base.
package onex

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"

	"onex/internal/core"
	"onex/internal/obs"
	"onex/internal/query"
	"onex/internal/rspace"
	"onex/internal/shard"
	"onex/internal/ts"
)

// Series is one input time series: an optional label and its observations.
type Series struct {
	// Label is free-form metadata (class label, ticker symbol, …).
	Label string
	// Values holds the observations in time order.
	Values []float64
}

// Build constructs an ONEX base over the given series. The input is copied
// and (by default) min-max normalized dataset-wide before indexing, exactly
// as the paper's experiments do; callers keep their raw slices.
func Build(name string, series []Series, opts Options) (*Base, error) {
	if len(series) == 0 {
		return nil, errors.New("onex: no input series")
	}
	d := &ts.Dataset{Name: name}
	for _, s := range series {
		d.Append(s.Label, append([]float64(nil), s.Values...))
	}
	return buildDataset(d, opts)
}

// buildDataset is the shared entry for Build and the internal harness.
func buildDataset(d *ts.Dataset, opts Options) (*Base, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	eng, err := shard.Build(d, cfg, opts.Shards, opts.ShardWorkers)
	if err != nil {
		return nil, err
	}
	return &Base{eng: eng, opts: opts}, nil
}

// Base is a built ONEX knowledge base: the similarity groups of every
// indexed subsequence length, their representatives, the GTI/LSI index
// layers, and the Similarity Parameter Space. A Base is immutable and safe
// for concurrent queries. With Options.Shards > 1 the base serves through
// the intra-dataset sharded engine (series hash-partitioned across shards,
// queries scattered and gathered) — answers are identical to the unsharded
// path over the same data.
type Base struct {
	eng  *shard.Engine
	opts Options
}

// ErrBuildCanceled is returned by Build when Options.Cancel fires before
// the offline construction completes.
var ErrBuildCanceled = core.ErrCanceled

// ST returns the similarity threshold the base was built with.
func (b *Base) ST() float64 { return b.eng.ST() }

// Name returns the dataset name the base was built over.
func (b *Base) Name() string { return b.eng.Name() }

// NumSeries returns the number of indexed series.
func (b *Base) NumSeries() int { return b.eng.NumSeries() }

// Shards returns the serving layout's shard count (1 for unsharded bases).
func (b *Base) Shards() int { return b.eng.ShardCount() }

// LayoutSignature fingerprints the serving layout (shard count plus each
// shard's series/subsequence population). Result caches keyed on a base
// should fold it in so the same data served under a different shard layout
// never aliases a previous incarnation's entries.
func (b *Base) LayoutSignature() uint64 { return b.eng.LayoutSignature() }

// Lengths returns the indexed subsequence lengths in increasing order.
func (b *Base) Lengths() []int {
	return b.eng.Lengths()
}

// BestMatch answers similarity queries (class I, Q1): the subsequence most
// similar to q under DTW. MatchExact restricts candidates to len(q);
// MatchAny searches every indexed length with the paper's length-ordering
// and early-stop optimizations.
func (b *Base) BestMatch(q []float64, mode MatchMode) (Match, error) {
	return b.BestMatchContext(context.Background(), q, mode)
}

// BestMatchContext is BestMatch under a context: a canceled or expired ctx
// stops the per-shard fan-out of a sharded (or distributed) base between
// rounds and returns ctx's error. Cancellation only abandons work — any
// answer returned is still exact. Unsharded bases answer synchronously and
// ignore ctx.
func (b *Base) BestMatchContext(ctx context.Context, q []float64, mode MatchMode) (Match, error) {
	m, err := b.eng.BestMatch(ctx, q, query.MatchMode(mode))
	if err != nil {
		return Match{}, err
	}
	return b.toPublicMatch(m), nil
}

// BestMatchObserved is BestMatch with optional tracing: a non-nil rec
// records per-stage spans (scan, refine — per-shard spans when the layout
// is sharded) and the query's work counters. Tracing only observes — the
// answer is bit-identical to BestMatch, and a nil rec adds no overhead on
// the search hot path. ctx carries cancellation and the request id that
// tags distributed per-shard work (see BestMatchContext).
func (b *Base) BestMatchObserved(ctx context.Context, q []float64, mode MatchMode, rec *obs.Trace) (Match, error) {
	m, err := b.eng.BestMatchObserved(ctx, q, query.MatchMode(mode), rec)
	if err != nil {
		return Match{}, err
	}
	return b.toPublicMatch(m), nil
}

func (b *Base) toPublicMatch(m query.Match) Match {
	values := b.eng.Window(m.SeriesID, m.Start, m.Length)
	return Match{
		SeriesID: m.SeriesID,
		Start:    m.Start,
		Length:   m.Length,
		Distance: m.Dist,
		Values:   append([]float64(nil), values...),
	}
}

// BatchResult is one BestMatchBatch outcome: the match for its query, or a
// per-query error (ragged, empty or non-finite queries fail individually
// without affecting the rest of the batch).
type BatchResult struct {
	Match Match
	Err   error
}

// BestMatchBatch answers many Q1 queries in one call, fanning them across
// the base's worker pool (Options.Parallelism workers) and amortizing the
// per-query setup over the batch. Results are positional — out[i] answers
// qs[i] — and each equals what BestMatch(qs[i], mode) would return, errors
// included. Malformed queries never panic; a nil or empty batch returns an
// empty slice.
func (b *Base) BestMatchBatch(ctx context.Context, qs [][]float64, mode MatchMode) []BatchResult {
	rs := b.eng.BestMatchBatch(ctx, qs, query.MatchMode(mode))
	out := make([]BatchResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			out[i] = BatchResult{Err: r.Err}
			continue
		}
		out[i] = BatchResult{Match: b.toPublicMatch(r.Match)}
	}
	return out
}

// KNNQuery is one item of a BestKMatchesBatch: the query sequence, its
// match mode, and how many neighbours to return (K ≤ 1 asks for the single
// best match).
type KNNQuery struct {
	Query []float64
	Mode  MatchMode
	K     int
}

// KNNBatchResult is one positional BestKMatchesBatch outcome: the ordered
// neighbours for its query, or a per-query error.
type KNNBatchResult struct {
	Matches []Match
	Err     error
}

// BestKMatchesBatch answers many k-NN queries in one call through the same
// worker-split scaffold as BestMatchBatch. Results are positional — out[i]
// answers qs[i] and equals what BestKMatches(qs[i].Query, qs[i].Mode,
// qs[i].K) would return, errors included.
func (b *Base) BestKMatchesBatch(ctx context.Context, qs []KNNQuery) []KNNBatchResult {
	in := make([]query.KNNQuery, len(qs))
	for i, q := range qs {
		in[i] = query.KNNQuery{Query: q.Query, Mode: query.MatchMode(q.Mode), K: q.K}
	}
	rs := b.eng.BestKMatchesBatch(ctx, in)
	out := make([]KNNBatchResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			out[i] = KNNBatchResult{Err: r.Err}
			continue
		}
		ms := make([]Match, 0, len(r.Matches))
		for _, m := range r.Matches {
			ms = append(ms, b.toPublicMatch(m))
		}
		out[i] = KNNBatchResult{Matches: ms}
	}
	return out
}

// BestKMatches generalizes BestMatch to the k nearest subsequences, ordered
// best first. Fewer than k results are returned only when the base holds
// fewer candidates.
func (b *Base) BestKMatches(q []float64, mode MatchMode, k int) ([]Match, error) {
	ms, err := b.eng.BestKMatches(context.Background(), q, query.MatchMode(mode), k)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(ms))
	for _, m := range ms {
		out = append(out, b.toPublicMatch(m))
	}
	return out, nil
}

// BestKMatchesObserved is BestKMatches with optional tracing and context
// (see BestMatchObserved).
func (b *Base) BestKMatchesObserved(ctx context.Context, q []float64, mode MatchMode, k int, rec *obs.Trace) ([]Match, error) {
	ms, err := b.eng.BestKMatchesObserved(ctx, q, query.MatchMode(mode), k, rec)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(ms))
	for _, m := range ms {
		out = append(out, b.toPublicMatch(m))
	}
	return out, nil
}

// RangeMatch is one RangeSearch result.
type RangeMatch struct {
	Match
	// Guaranteed marks matches admitted wholesale by the paper's Lemma 2
	// guarantee (group representative within ST/2 of the query). Under
	// RangeSearch their Distance is the ST upper bound, not an exact value —
	// do not sort or re-threshold on it; use RangeSearchExact when exact
	// distances matter.
	Guaranteed bool
}

// RangeSearch returns every subsequence of the given length whose
// normalized DTW to q is within radius. When radius ≥ the build threshold,
// whole groups are admitted through the Lemma 2 triangle inequality without
// per-member DTW computations.
func (b *Base) RangeSearch(q []float64, length int, radius float64) ([]RangeMatch, error) {
	rs, err := b.eng.RangeSearch(context.Background(), q, length, radius)
	if err != nil {
		return nil, err
	}
	out := make([]RangeMatch, 0, len(rs))
	for _, r := range rs {
		out = append(out, RangeMatch{Match: b.toPublicMatch(r.Match), Guaranteed: r.Guaranteed})
	}
	return out, nil
}

// RangeSearchExact is RangeSearch with exact distances on the guaranteed
// path: members admitted through the Lemma 2 guarantee get their true DTW
// computed (instead of reporting the ST upper bound) and are filtered
// against the radius like every other candidate. The result set is exactly
// the subsequences within radius, independent of the base's grouping, so
// Distance is always safe to sort or re-threshold on.
func (b *Base) RangeSearchExact(q []float64, length int, radius float64) ([]RangeMatch, error) {
	rs, err := b.eng.RangeSearchExact(context.Background(), q, length, radius)
	if err != nil {
		return nil, err
	}
	out := make([]RangeMatch, 0, len(rs))
	for _, r := range rs {
		out = append(out, RangeMatch{Match: b.toPublicMatch(r.Match), Guaranteed: r.Guaranteed})
	}
	return out, nil
}

// RangeSearchObserved is RangeSearch/RangeSearchExact with optional tracing
// and context (see BestMatchObserved); exact selects the RangeSearchExact
// distance semantics.
func (b *Base) RangeSearchObserved(ctx context.Context, q []float64, length int, radius float64, exact bool, rec *obs.Trace) ([]RangeMatch, error) {
	rs, err := b.eng.RangeSearchObserved(ctx, q, length, radius, exact, rec)
	if err != nil {
		return nil, err
	}
	out := make([]RangeMatch, 0, len(rs))
	for _, r := range rs {
		out = append(out, RangeMatch{Match: b.toPublicMatch(r.Match), Guaranteed: r.Guaranteed})
	}
	return out, nil
}

// RangeQuery is one item of a RangeSearchBatch; Exact selects
// RangeSearchExact semantics for that item.
type RangeQuery struct {
	Query  []float64
	Length int
	Radius float64
	Exact  bool
}

// RangeBatchResult is one positional RangeSearchBatch outcome.
type RangeBatchResult struct {
	Matches []RangeMatch
	Err     error
}

// RangeSearchBatch answers many range queries in one call through the same
// worker-split scaffold as BestMatchBatch. Results are positional and each
// equals the corresponding RangeSearch or RangeSearchExact call, errors
// included.
func (b *Base) RangeSearchBatch(ctx context.Context, qs []RangeQuery) []RangeBatchResult {
	in := make([]query.RangeQuery, len(qs))
	for i, q := range qs {
		in[i] = query.RangeQuery{Query: q.Query, Length: q.Length, Radius: q.Radius, Exact: q.Exact}
	}
	rs := b.eng.RangeSearchBatch(ctx, in)
	out := make([]RangeBatchResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			out[i] = RangeBatchResult{Err: r.Err}
			continue
		}
		ms := make([]RangeMatch, 0, len(r.Results))
		for _, m := range r.Results {
			ms = append(ms, RangeMatch{Match: b.toPublicMatch(m.Match), Guaranteed: m.Guaranteed})
		}
		out[i] = RangeBatchResult{Matches: ms}
	}
	return out
}

// Append grows one existing series in time — streaming point ingestion.
// Only the suffix subsequences (windows overlapping the appended points)
// are pushed through Algorithm 1's nearest-representative assignment, and
// the index layers refresh incrementally for the touched groups, so
// maintenance costs O(new-subsequences × g × L) distance work instead of a
// rebuild. When the accumulated drift (fraction of incrementally assigned
// members since the last full build) would cross Options.RebuildDrift,
// Append runs the full offline construction over the final data instead —
// producing exactly the base a from-scratch Build over the same normalized
// data would for the indexed length set (which stays pinned: growing a
// series never adds new indexed lengths) — and resets the drift to zero.
//
// The receiver stays valid and unchanged (the same immutability contract as
// Extend); the grown base is returned. Points are scaled into the base's
// value space with the original dataset's min/max under the default
// normalization; NormalizePerSeries bases cannot Append (the original
// per-series scale is not retained).
func (b *Base) Append(seriesID int, points ...float64) (*Base, error) {
	eng, err := b.eng.Append(seriesID, points)
	if err != nil {
		return nil, err
	}
	return &Base{eng: eng, opts: b.opts}, nil
}

// Drift reports the fraction of indexed subsequences assigned incrementally
// (Append/Extend) since the last full offline build — the staleness signal
// of the amortized rebuild policy (see Options.RebuildDrift).
func (b *Base) Drift() float64 { return b.eng.Drift() }

// Extend incrementally adds series to the base: only the new subsequences
// are clustered (joining existing groups or founding new ones per
// Algorithm 1's assignment rule) and the indexes are re-derived
// incrementally. Like Append, Extend participates in the amortized rebuild
// policy — once the extension would push drift past Options.RebuildDrift
// the full offline construction re-runs instead. The receiver stays valid;
// the extended base is returned. New series IDs continue after the
// existing ones.
func (b *Base) Extend(series []Series) (*Base, error) {
	in := make([]*ts.Series, 0, len(series))
	for _, s := range series {
		in = append(in, &ts.Series{Label: s.Label, Values: append([]float64(nil), s.Values...)})
	}
	eng, err := b.eng.Extend(in)
	if err != nil {
		return nil, err
	}
	return &Base{eng: eng, opts: b.opts}, nil
}

// Seasonal answers the user-driven class II query: the recurring similarity
// patterns of one series — every group of the given length holding two or
// more subsequences of that series.
func (b *Base) Seasonal(seriesID, length int) ([]Pattern, error) {
	gs, err := b.eng.SeasonalSample(seriesID, length)
	if err != nil {
		return nil, err
	}
	return b.toPatterns(gs), nil
}

// SeasonalAll answers the data-driven class II query: every recurring
// similarity pattern of the given length across the whole dataset.
func (b *Base) SeasonalAll(length int) ([]Pattern, error) {
	gs, err := b.eng.SeasonalAll(length)
	if err != nil {
		return nil, err
	}
	return b.toPatterns(gs), nil
}

// SeasonalObserved is Seasonal with optional tracing: the span carries the
// enumeration sizes (seasonal queries run no distance cascade).
func (b *Base) SeasonalObserved(seriesID, length int, rec *obs.Trace) ([]Pattern, error) {
	gs, err := b.eng.SeasonalSampleObserved(seriesID, length, rec)
	if err != nil {
		return nil, err
	}
	return b.toPatterns(gs), nil
}

// SeasonalAllObserved is SeasonalAll with optional tracing.
func (b *Base) SeasonalAllObserved(length int, rec *obs.Trace) ([]Pattern, error) {
	gs, err := b.eng.SeasonalAllObserved(length, rec)
	if err != nil {
		return nil, err
	}
	return b.toPatterns(gs), nil
}

func (b *Base) toPatterns(gs []query.SeasonalGroup) []Pattern {
	out := make([]Pattern, 0, len(gs))
	for _, g := range gs {
		p := Pattern{
			Length:         g.Length,
			Representative: append([]float64(nil), g.Rep...),
		}
		for _, m := range g.Members {
			p.Occurrences = append(p.Occurrences, Occurrence{
				SeriesID: m.SeriesIdx,
				Start:    m.Start,
			})
		}
		out = append(out, p)
	}
	return out
}

// SeasonalQuery is one item of a SeasonalBatch. SeriesID < 0 asks the
// data-driven form (SeasonalAll); otherwise the user-driven form over that
// series.
type SeasonalQuery struct {
	SeriesID int
	Length   int
}

// SeasonalBatchResult is one positional SeasonalBatch outcome.
type SeasonalBatchResult struct {
	Patterns []Pattern
	Err      error
}

// SeasonalBatch answers many seasonal queries in one call. Results are
// positional and each equals the corresponding Seasonal or SeasonalAll
// call, errors included.
func (b *Base) SeasonalBatch(qs []SeasonalQuery) []SeasonalBatchResult {
	in := make([]query.SeasonalQuery, len(qs))
	for i, q := range qs {
		in[i] = query.SeasonalQuery{SeriesID: q.SeriesID, Length: q.Length}
	}
	rs := b.eng.SeasonalBatch(in)
	out := make([]SeasonalBatchResult, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			out[i] = SeasonalBatchResult{Err: r.Err}
			continue
		}
		out[i] = SeasonalBatchResult{Patterns: b.toPatterns(r.Groups)}
	}
	return out
}

// RecommendThreshold answers class III queries: the similarity-threshold
// range realizing a similarity degree (Strict/Medium/Loose, Sec. 4.2).
// length < 0 uses the dataset-global critical values; otherwise the values
// local to that subsequence length.
func (b *Base) RecommendThreshold(d Degree, length int) (Range, error) {
	lo, hi, err := b.eng.Recommend(rspace.Degree(d), length)
	if err != nil {
		return Range{}, err
	}
	return Range{Low: lo, High: hi}, nil
}

// DegreeOf classifies a threshold on the base's Strict/Medium/Loose scale.
func (b *Base) DegreeOf(st float64) Degree {
	return Degree(b.eng.DegreeOf(st))
}

// WithThreshold derives a base for a different similarity threshold using
// the Sec. 5.2 split/merge adaptation — no reclustering of the raw data.
// The receiver is unchanged.
func (b *Base) WithThreshold(stPrime float64) (*Base, error) {
	eng, err := b.eng.WithThreshold(stPrime)
	if err != nil {
		return nil, err
	}
	return &Base{eng: eng, opts: b.opts}, nil
}

// Save serializes the base (normalized data, similarity groups, build
// configuration) to w so it can be reopened with Load without re-running
// the offline construction. Threshold-adapted bases cannot be saved — save
// the original and re-adapt after loading.
func (b *Base) Save(w io.Writer) error {
	return b.eng.Save(w)
}

// Load reopens a base written by Save. The derived index layers are rebuilt
// from the stored groups; queries answer identically to the saved base.
func Load(r io.Reader) (*Base, error) {
	return LoadDistributed(r, nil)
}

// LoadDistributed is Load with a serving-time worker list: a non-empty
// workers slice re-derives the snapshot's shards and ships them to the
// given worker processes (shard s to workers[s%len(workers)]), so the same
// snapshot serves in-process or distributed. Worker URLs are never
// persisted — they are this process's deployment, not the base's state.
func LoadDistributed(r io.Reader, workers []string) (*Base, error) {
	eng, err := shard.Load(r, workers)
	if err != nil {
		return nil, err
	}
	return &Base{eng: eng, opts: Options{ShardWorkers: append([]string(nil), workers...)}}, nil
}

// SaveFile snapshots the base to path atomically: the stream is written to
// a temporary file in the same directory and renamed into place, so readers
// never observe a partial snapshot and a crashed save leaves any previous
// snapshot intact.
func (b *Base) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := b.Save(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// LoadFile reopens a base snapshotted with SaveFile.
func LoadFile(path string) (*Base, error) {
	return LoadFileDistributed(path, nil)
}

// LoadFileDistributed is LoadFile with a serving-time worker list (see
// LoadDistributed).
func LoadFileDistributed(path string, workers []string) (*Base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDistributed(f, workers)
}

// ShardWorkers reports the remote worker processes serving the base's
// shards (empty for in-process layouts; a fresh slice).
func (b *Base) ShardWorkers() []string { return b.eng.WorkerURLs() }

// Close releases the base's transport resources — idle connections to
// remote shard workers; in-process bases hold none and Close is a no-op.
// Maintenance steps (Append, Extend) share unchanged shard state between
// base incarnations, so close only the final base of a lineage, at
// shutdown. Closing never touches worker-side state: the workers retain
// their shipped shards and a later LoadDistributed re-ships idempotently.
func (b *Base) Close() error { return b.eng.Close() }

// Stats reports the size and construction cost of the base (Table 4), plus
// the maintenance and shard-layout observability counters.
func (b *Base) Stats() Stats {
	st := Stats{
		Representatives: b.eng.TotalGroups(),
		Subsequences:    b.eng.TotalSubseq(),
		IndexBytes:      b.eng.SizeBytes(),
		BuildTime:       b.eng.BuildTime(),
		STHalf:          b.eng.STHalf(),
		STFinal:         b.eng.STFinal(),
		Drift:           b.eng.Drift(),
		Rebuilds:        b.eng.Rebuilds(),
		LastRebuild:     b.eng.LastRebuild(),
		Shards:          b.eng.ShardCount(),
	}
	qc := b.eng.QueryCounters()
	st.Query = QueryStats{
		Queries:       qc.Queries,
		RepsExamined:  qc.RepsExamined,
		PrunedByKim:   qc.PrunedByKim,
		PrunedByKeogh: qc.PrunedByKeogh,
		DTWComputed:   qc.DTWComputed,
		MembersTested: qc.MembersTested,
	}
	for _, s := range b.eng.ShardStats() {
		st.PerShard = append(st.PerShard, ShardStat{
			Shard:        s.Shard,
			Series:       s.Series,
			Groups:       s.Groups,
			Subsequences: s.Subsequences,
			IndexBytes:   s.IndexBytes,
		})
	}
	return st
}
