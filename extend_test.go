package onex

import (
	"math"
	"testing"
)

func TestBestKMatchesPublic(t *testing.T) {
	b := buildFixture(t, Options{})
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	ms, err := b.BestKMatches(q, MatchExact, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Distance > ms[i].Distance+1e-12 {
			t.Fatalf("matches unsorted at %d", i)
		}
	}
	best, err := b.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Distance > best.Distance+1e-9 {
		t.Errorf("k-NN top (%v) worse than BestMatch (%v)", ms[0].Distance, best.Distance)
	}
	if _, err := b.BestKMatches(q, MatchExact, 0); err == nil {
		t.Error("k=0: want error")
	}
}

func TestExtendPublic(t *testing.T) {
	b := buildFixture(t, Options{})
	before := b.Stats()

	// Add two fresh series: one sine-like (joins existing groups), one
	// novel square wave (founds new groups).
	sine := make([]float64, 48)
	square := make([]float64, 48)
	for i := range sine {
		sine[i] = math.Sin(2*math.Pi*float64(i)/16 + 0.4)
		if (i/8)%2 == 0 {
			square[i] = 1
		} else {
			square[i] = -1
		}
	}
	ext, err := b.Extend([]Series{
		{Label: "sine-new", Values: sine},
		{Label: "square", Values: square},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := ext.Stats()
	if after.Subsequences <= before.Subsequences {
		t.Errorf("subsequences did not grow: %d → %d", before.Subsequences, after.Subsequences)
	}
	if after.Representatives < before.Representatives {
		t.Errorf("representatives shrank: %d → %d", before.Representatives, after.Representatives)
	}

	// The original base still answers; the extended base can find the
	// novel square shape, which the original cannot have.
	q := square[:16]
	// Normalize the query into the base's space like the data was: the
	// fixture data spans sines in [-1,1] plus a ramp, so rely on MatchAny
	// distances instead of exact values.
	mExt, err := ext.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	mOld, err := b.BestMatch(q, MatchExact)
	if err != nil {
		t.Fatal(err)
	}
	if mExt.Distance > mOld.Distance+1e-9 {
		t.Errorf("extended base (%v) worse than original (%v) for the added shape",
			mExt.Distance, mOld.Distance)
	}
	if mExt.SeriesID < 0 || mExt.SeriesID >= after.Representatives+1000 {
		t.Errorf("suspicious match series %d", mExt.SeriesID)
	}

	// Errors.
	if _, err := b.Extend(nil); err == nil {
		t.Error("empty extend: want error")
	}
	if _, err := b.Extend([]Series{{Values: nil}}); err == nil {
		t.Error("empty series: want error")
	}
	// Adapted bases refuse extension.
	adapted, err := b.WithThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adapted.Extend([]Series{{Values: sine}}); err == nil {
		t.Error("extending adapted base: want error")
	}
}

func TestExtendSeriesIDsContinue(t *testing.T) {
	b := buildFixture(t, Options{})
	n := 7 // fixture has 6 sines + 1 ramp
	v := make([]float64, 48)
	for i := range v {
		v[i] = math.Sin(float64(i) / 3)
	}
	ext, err := b.Extend([]Series{{Label: "new", Values: v}})
	if err != nil {
		t.Fatal(err)
	}
	// A pattern occurring only in the new series must report SeriesID n.
	ps, err := ext.Seasonal(n, 16)
	if err != nil {
		t.Fatalf("Seasonal on new series id %d: %v", n, err)
	}
	for _, p := range ps {
		for _, o := range p.Occurrences {
			if o.SeriesID != n {
				t.Errorf("occurrence in series %d, want %d", o.SeriesID, n)
			}
		}
	}
}
