package onex

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"onex/internal/dist"
)

func TestAppendPublicBasics(t *testing.T) {
	b := buildFixture(t, Options{RebuildDrift: -1})
	before := b.Stats()
	beforeMatchQ := make([]float64, 16)
	for i := range beforeMatchQ {
		beforeMatchQ[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	beforeMatch, err := b.BestMatch(beforeMatchQ, MatchExact)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := b.Append(0, 0.1, 0.2, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.Stats(); got.Subsequences <= before.Subsequences {
		t.Errorf("subsequences did not grow: %d → %d", before.Subsequences, got.Subsequences)
	}
	if grown.Drift() <= 0 {
		t.Error("grown base reports zero drift")
	}
	// The receiver keeps its immutability contract: same stats, same answer.
	if after := b.Stats(); after.Subsequences != before.Subsequences {
		t.Error("Append mutated the receiver base")
	}
	if m, err := b.BestMatch(beforeMatchQ, MatchExact); err != nil ||
		m.SeriesID != beforeMatch.SeriesID || m.Start != beforeMatch.Start ||
		m.Distance != beforeMatch.Distance {
		t.Errorf("receiver's answers changed after Append: %+v vs %+v (%v)", m, beforeMatch, err)
	}

	// Errors.
	if _, err := b.Append(0); err == nil {
		t.Error("no points: want error")
	}
	if _, err := b.Append(-1, 1); err == nil {
		t.Error("negative series: want error")
	}
	if _, err := b.Append(b.NumSeries(), 1); err == nil {
		t.Error("out-of-range series: want error")
	}
	if _, err := b.Append(0, math.NaN()); err == nil {
		t.Error("NaN point: want error")
	}
	adapted, err := b.WithThreshold(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adapted.Append(0, 1); err == nil {
		t.Error("append to adapted base: want error")
	}
}

// rangeKey identifies one range result for set comparison.
type rangeKey struct {
	series, start int
}

// assertRangeEquivalent requires got and want (from two bases over the same
// final data) to hold exactly the same subsequences with distances within
// 1e-12 — the PR 3 tolerance.
func assertRangeEquivalent(t *testing.T, label string, got, want []RangeMatch) {
	t.Helper()
	gm := map[rangeKey]float64{}
	for _, r := range got {
		gm[rangeKey{r.SeriesID, r.Start}] = r.Distance
	}
	wm := map[rangeKey]float64{}
	for _, r := range want {
		wm[rangeKey{r.SeriesID, r.Start}] = r.Distance
	}
	if len(gm) != len(wm) {
		t.Fatalf("%s: %d results vs %d from scratch", label, len(gm), len(wm))
	}
	for k, wd := range wm {
		gd, ok := gm[k]
		if !ok {
			t.Fatalf("%s: missing %+v (dist %v)", label, k, wd)
		}
		if math.Abs(gd-wd) > 1e-12 {
			t.Fatalf("%s: %+v dist %v vs %v", label, k, gd, wd)
		}
	}
}

// TestAppendExtendRangeEquivalenceProperty is the append-vs-rebuild
// equivalence suite: random interleavings of Append (points on existing
// series) and Extend (whole new series) against an incrementally maintained
// base must answer exact-distance range queries identically to a
// from-scratch Build over the final data — the result sets of
// RangeSearchExact are grouping-invariant, so any divergence means the
// incremental path corrupted membership, representatives or indexes. Runs
// the whole suite at Parallelism 1 and 8 (build workers follow Parallelism).
func TestAppendExtendRangeEquivalenceProperty(t *testing.T) {
	lengths := []int{8, 16}
	for _, parallelism := range []int{1, 8} {
		parallelism := parallelism
		t.Run(fmt.Sprintf("P%d", parallelism), func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				r := rand.New(rand.NewSource(seed * 101))
				// Random-walk series in raw space; NormalizeNone keeps the
				// from-scratch reference byte-comparable regardless of the
				// appended values' range.
				final := make([][]float64, 0, 8)
				walk := func(n int) []float64 {
					v := make([]float64, n)
					x := r.Float64()
					for i := range v {
						x += r.NormFloat64() * 0.1
						v[i] = x
					}
					return v
				}
				series := make([]Series, 5)
				for i := range series {
					series[i] = Series{Values: walk(24 + r.Intn(24))}
					final = append(final, append([]float64(nil), series[i].Values...))
				}
				opts := Options{
					ST:           0.3,
					Lengths:      lengths,
					Seed:         seed,
					Normalize:    NormalizeNone,
					RebuildDrift: -1, // force the pure incremental path
					Parallelism:  parallelism,
				}
				base, err := Build("equiv", series, opts)
				if err != nil {
					t.Fatal(err)
				}

				// Random interleaving of appends and extends.
				for op := 0; op < 8; op++ {
					if r.Intn(3) == 0 {
						v := walk(16 + r.Intn(16))
						base, err = base.Extend([]Series{{Values: v}})
						if err != nil {
							t.Fatal(err)
						}
						final = append(final, append([]float64(nil), v...))
					} else {
						sid := r.Intn(len(final))
						pts := walk(1 + r.Intn(6))
						base, err = base.Append(sid, pts...)
						if err != nil {
							t.Fatal(err)
						}
						final[sid] = append(final[sid], pts...)
					}
				}

				fresh := make([]Series, len(final))
				for i, v := range final {
					fresh[i] = Series{Values: v}
				}
				scratch, err := Build("equiv", fresh, opts)
				if err != nil {
					t.Fatal(err)
				}

				// Exact range queries at radii below and above ST (the latter
				// exercises the Lemma 2 wholesale path on both bases).
				for qi := 0; qi < 4; qi++ {
					l := lengths[qi%len(lengths)]
					sid := r.Intn(len(final))
					var q []float64
					if len(final[sid]) >= l && qi%2 == 0 {
						start := r.Intn(len(final[sid]) - l + 1)
						q = append([]float64(nil), final[sid][start:start+l]...)
					} else {
						q = walk(l)
					}
					for _, radius := range []float64{0.15, 0.3, 0.6} {
						got, err := base.RangeSearchExact(q, l, radius)
						if err != nil {
							t.Fatal(err)
						}
						want, err := scratch.RangeSearchExact(q, l, radius)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("seed %d P%d len %d radius %v", seed, parallelism, l, radius)
						assertRangeEquivalent(t, label, got, want)
					}
					// Self-consistency of the approximate paths: the reported
					// distance must be the true DTW of the returned window on
					// both bases (grouping may legitimately pick different
					// but correctly-measured answers).
					for _, bb := range []*Base{base, scratch} {
						m, err := bb.BestMatch(q, MatchAny)
						if err != nil {
							t.Fatal(err)
						}
						if want := dist.NormalizedDTW(q, m.Values); math.Abs(m.Distance-want) > 1e-12 {
							t.Fatalf("seed %d: BestMatch reports %v, true DTW %v", seed, m.Distance, want)
						}
					}
				}
			}
		})
	}
}

// TestAppendRebuildPolicyEquivalence pins the amortized-rebuild branch: with
// a tiny drift threshold every Append re-runs the full offline build, which
// must equal a from-scratch Build over the final data exactly — identical
// representatives counts and identical best-match answers, at Parallelism 1
// and 8.
func TestAppendRebuildPolicyEquivalence(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		opts := Options{
			ST:           0.25,
			Lengths:      []int{8, 16},
			Seed:         9,
			RebuildDrift: 1e-9,
			Parallelism:  parallelism,
		}
		series := sineSeries(6, 48)
		base, err := Build("policy", series, opts)
		if err != nil {
			t.Fatal(err)
		}
		// In-range points keep the dataset-wide min/max — and therefore the
		// normalized values — identical to the from-scratch reference.
		pts := append([]float64(nil), series[1].Values[:5]...)
		grown, err := base.Append(0, pts...)
		if err != nil {
			t.Fatal(err)
		}
		if grown.Drift() != 0 {
			t.Errorf("P%d: rebuild did not reset drift (%v)", parallelism, grown.Drift())
		}

		finalSeries := make([]Series, len(series))
		copy(finalSeries, series)
		finalSeries[0] = Series{Label: series[0].Label,
			Values: append(append([]float64(nil), series[0].Values...), pts...)}
		scratch, err := Build("policy", finalSeries, opts)
		if err != nil {
			t.Fatal(err)
		}
		if g, s := grown.Stats(), scratch.Stats(); g.Representatives != s.Representatives ||
			g.Subsequences != s.Subsequences {
			t.Fatalf("P%d: rebuilt base (%d reps, %d subseq) differs from scratch (%d, %d)",
				parallelism, g.Representatives, g.Subsequences, s.Representatives, s.Subsequences)
		}
		q := make([]float64, 16)
		for i := range q {
			q[i] = math.Sin(2*math.Pi*float64(i)/16 + 0.3)
		}
		mg, err := grown.BestMatch(q, MatchAny)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := scratch.BestMatch(q, MatchAny)
		if err != nil {
			t.Fatal(err)
		}
		if mg.SeriesID != ms.SeriesID || mg.Start != ms.Start || mg.Length != ms.Length ||
			math.Abs(mg.Distance-ms.Distance) > 1e-12 {
			t.Fatalf("P%d: rebuilt answer %+v differs from scratch %+v", parallelism, mg, ms)
		}
	}
}

// FuzzAppend feeds ragged, empty, NaN/Inf and out-of-range append batches to
// a prebuilt base: Append must never panic, must reject invalid input with
// an error, and a successful append must leave both bases fully queryable.
func FuzzAppend(f *testing.F) {
	f.Add(0, float64(0.5), float64(-0.5), 3)
	f.Add(-1, math.NaN(), float64(1), 1)
	f.Add(7, math.Inf(1), float64(0), 0)
	f.Add(2, float64(1e300), float64(-1e300), 2)
	base, err := Build("fuzz", sineSeries(4, 32), Options{ST: 0.25, Lengths: []int{8}, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, sid int, a, b float64, n int) {
		pts := []float64{}
		if n < 0 {
			n = -n
		}
		for i := 0; i < n%5; i++ {
			if i%2 == 0 {
				pts = append(pts, a)
			} else {
				pts = append(pts, b)
			}
		}
		grown, err := base.Append(sid, pts...)
		valid := sid >= 0 && sid < base.NumSeries() && len(pts) > 0
		for _, v := range pts {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				valid = false
			}
		}
		if valid != (err == nil) {
			t.Fatalf("Append(sid=%d, %v): err=%v, want validity %v", sid, pts, err, valid)
		}
		if err != nil {
			return
		}
		q := make([]float64, 8)
		for i := range q {
			q[i] = math.Sin(float64(i) / 2)
		}
		if _, err := grown.BestMatch(q, MatchExact); err != nil {
			t.Fatalf("grown base cannot answer: %v", err)
		}
		if _, err := base.BestMatch(q, MatchExact); err != nil {
			t.Fatalf("receiver base cannot answer: %v", err)
		}
	})
}
