package onex

import (
	"context"
	"fmt"
	"math"
	"testing"

	"onex/internal/obs"
)

// TestObservedEquivalence pins the tracing contract at the public surface:
// for every query family, a run with a live trace recorder is bit-identical
// to the untraced call — across sequential and parallel execution and across
// the mono and sharded engines. Tracing only observes; it never perturbs the
// cascade's pruning order or tie-breaks.
func TestObservedEquivalence(t *testing.T) {
	series := walkSeries(9, 48, 7)
	for _, par := range []int{1, 8} {
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("par=%d/shards=%d", par, shards), func(t *testing.T) {
				opts := Options{ST: 0.25, Lengths: []int{8, 16, 24}, Parallelism: par, Shards: shards}
				base, err := Build("fixture", series, opts)
				if err != nil {
					t.Fatal(err)
				}
				q := append([]float64(nil), series[4].Values[10:26]...)

				// Q1 best match.
				tr := obs.NewTrace("t-match")
				am, err := base.BestMatch(q, MatchAny)
				if err != nil {
					t.Fatal(err)
				}
				bm, err := base.BestMatchObserved(context.Background(), q, MatchAny, tr)
				if err != nil {
					t.Fatal(err)
				}
				if am.SeriesID != bm.SeriesID || am.Start != bm.Start || am.Length != bm.Length ||
					math.Float64bits(am.Distance) != math.Float64bits(bm.Distance) {
					t.Fatalf("BestMatch diverged under tracing: %+v vs %+v", am, bm)
				}
				requireTraced(t, "match", tr, true)

				// k-NN.
				ak, err := base.BestKMatches(q, MatchAny, 3)
				if err != nil {
					t.Fatal(err)
				}
				tr = obs.NewTrace("t-knn")
				bk, err := base.BestKMatchesObserved(context.Background(), q, MatchAny, 3, tr)
				if err != nil {
					t.Fatal(err)
				}
				if len(ak) != len(bk) {
					t.Fatalf("k-NN counts diverged: %d vs %d", len(ak), len(bk))
				}
				for i := range ak {
					if ak[i].SeriesID != bk[i].SeriesID || ak[i].Start != bk[i].Start ||
						math.Float64bits(ak[i].Distance) != math.Float64bits(bk[i].Distance) {
						t.Fatalf("k-NN %d diverged under tracing: %+v vs %+v", i, ak[i], bk[i])
					}
				}
				requireTraced(t, "knn", tr, true)

				// Range search, both distance semantics.
				for _, exact := range []bool{false, true} {
					var ar []RangeMatch
					if exact {
						ar, err = base.RangeSearchExact(q, 16, 0.3)
					} else {
						ar, err = base.RangeSearch(q, 16, 0.3)
					}
					if err != nil {
						t.Fatal(err)
					}
					tr = obs.NewTrace("t-range")
					br, err := base.RangeSearchObserved(context.Background(), q, 16, 0.3, exact, tr)
					if err != nil {
						t.Fatal(err)
					}
					if len(ar) != len(br) {
						t.Fatalf("range(exact=%v) counts diverged: %d vs %d", exact, len(ar), len(br))
					}
					for i := range ar {
						if ar[i].SeriesID != br[i].SeriesID || ar[i].Start != br[i].Start ||
							ar[i].Guaranteed != br[i].Guaranteed ||
							math.Float64bits(ar[i].Distance) != math.Float64bits(br[i].Distance) {
							t.Fatalf("range(exact=%v) %d diverged under tracing: %+v vs %+v", exact, i, ar[i], br[i])
						}
					}
					requireTraced(t, "range", tr, false)
				}

				// Seasonal (no cascade: spans only, no work counters required).
				ap, err := base.SeasonalAll(16)
				if err != nil {
					t.Fatal(err)
				}
				tr = obs.NewTrace("t-seasonal")
				bp, err := base.SeasonalAllObserved(16, tr)
				if err != nil {
					t.Fatal(err)
				}
				if len(ap) != len(bp) {
					t.Fatalf("seasonal counts diverged: %d vs %d", len(ap), len(bp))
				}
				for i := range ap {
					if len(ap[i].Occurrences) != len(bp[i].Occurrences) {
						t.Fatalf("pattern %d occurrence counts diverged", i)
					}
					for j := range ap[i].Occurrences {
						if ap[i].Occurrences[j] != bp[i].Occurrences[j] {
							t.Fatalf("pattern %d occurrence %d diverged under tracing", i, j)
						}
					}
				}
				if len(tr.Snapshot().Spans) == 0 {
					t.Error("seasonal trace recorded no spans")
				}
			})
		}
	}
}

// requireTraced asserts a recorder actually observed the query: at least
// one span, and (for cascade families) non-empty work counters whose
// repsExamined tally is positive.
func requireTraced(t *testing.T, family string, tr *obs.Trace, needWork bool) {
	t.Helper()
	v := tr.Snapshot()
	if len(v.Spans) == 0 {
		t.Errorf("%s trace recorded no spans", family)
	}
	if !needWork {
		return
	}
	if v.Work["repsExamined"] <= 0 {
		t.Errorf("%s trace work = %v, want repsExamined > 0", family, v.Work)
	}
}
