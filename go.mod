module onex

go 1.22
