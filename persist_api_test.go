package onex

import (
	"bytes"
	"math"
	"testing"
)

func TestPublicSaveLoad(t *testing.T) {
	b := buildFixture(t, Options{})
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ST() != b.ST() {
		t.Errorf("ST %v != %v", loaded.ST(), b.ST())
	}
	if loaded.Stats().Representatives != b.Stats().Representatives {
		t.Error("representative count changed across save/load")
	}
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	m1, err := b.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := loaded.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if m1.SeriesID != m2.SeriesID || m1.Start != m2.Start || m1.Distance != m2.Distance {
		t.Errorf("answers differ: %v vs %v", m1, m2)
	}
	// All query classes work on the loaded base.
	if _, err := loaded.Seasonal(0, 16); err != nil {
		t.Errorf("Seasonal after load: %v", err)
	}
	if _, err := loaded.RecommendThreshold(Strict, -1); err != nil {
		t.Errorf("Recommend after load: %v", err)
	}
	if _, err := loaded.WithThreshold(0.4); err != nil {
		t.Errorf("WithThreshold after load: %v", err)
	}
	if _, err := loaded.RangeSearch(q, 16, 0.1); err != nil {
		t.Errorf("RangeSearch after load: %v", err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a base"))); err == nil {
		t.Error("want error")
	}
}

func TestPublicRangeSearch(t *testing.T) {
	b := buildFixture(t, Options{})
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	ms, err := b.RangeSearch(q, 16, b.ST())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no range results at radius=ST for a shape present in the data")
	}
	for _, m := range ms {
		if !m.Guaranteed && m.Distance > b.ST()+1e-9 {
			t.Errorf("verified result outside radius: %v", m.Distance)
		}
		if len(m.Values) != 16 {
			t.Errorf("result window length %d", len(m.Values))
		}
	}
	if _, err := b.RangeSearch(q, 16, -1); err == nil {
		t.Error("negative radius: want error")
	}
}
