package onex

import (
	"fmt"
	"math"

	"onex/internal/core"
	"onex/internal/query"
)

// Options configures Build. The zero value is NOT usable: ST must be
// positive. Everything else defaults to the paper's settings.
type Options struct {
	// ST is the similarity threshold in normalized-ED units; the grouping
	// radius is ST/2. The paper's experiments use the per-dataset sweet
	// spot, around 0.2 (Sec. 6.3). Required.
	ST float64
	// Lengths restricts which subsequence lengths are indexed. nil indexes
	// every length from 2 to the longest series — the paper's default and
	// by far the most expensive choice; pass a subset for large data.
	Lengths []int
	// Seed drives the randomized insertion order of Algorithm 1. Builds
	// are deterministic given the same data, options and seed.
	Seed int64
	// Workers bounds build parallelism (0 = GOMAXPROCS). When 0,
	// Parallelism (if set) takes its place, so one knob can govern both the
	// offline and online stages.
	Workers int
	// Parallelism bounds the worker fan-out of the online stage: single
	// queries (representative scans, group mining, range-search groups) and
	// BestMatchBatch. ≤ 0 selects runtime.GOMAXPROCS(0); 1 forces the
	// sequential path; values above NumCPU are accepted and merely
	// oversubscribe the scheduler. Query answers are identical for every
	// setting — parallel execution is answer-invariant by construction —
	// so this is purely a latency/throughput knob.
	Parallelism int
	// Shards hash-partitions the dataset's series across this many engine
	// shards, each with its own index layers built concurrently and queried
	// by scatter-gather. 0 or 1 keeps the single-engine path (bit-compatible
	// with previous releases); counts above the series count clamp to it;
	// negative counts error. Query answers — BestMatch, BestKMatches,
	// RangeSearch(Exact), Seasonal, batches — are identical at every shard
	// count: the similarity grouping is computed globally and the
	// scatter-gather replays the single-engine decision procedure, so like
	// Parallelism this is a scale/latency knob, not a semantics knob. The
	// SP-Space guidance surface — RecommendThreshold, DegreeOf,
	// Stats.STHalf/STFinal — is likewise computed from the one global
	// grouping (with on-demand inter-representative distances, so no global
	// O(g²) matrix is ever materialized) and is bit-identical at every shard
	// count. The one exception, outside the query classes: threshold
	// adaptation (WithThreshold) requires an unsharded base.
	Shards int
	// ShardWorkers lists remote worker base URLs (e.g. "http://host:9102")
	// serving the shards instead of this process: shard s is shipped to and
	// queried on ShardWorkers[s%len(ShardWorkers)] over the worker REST
	// protocol (see internal/shardrpc and the "Distributed serving" section
	// of the package documentation). Empty keeps every shard in-process.
	// With workers set, Shards ≤ 1 serves as one remote shard. Answers are
	// bit-identical to the in-process layout — workers rebuild the exact
	// per-shard index from the shipped state — so, like Shards, this is a
	// deployment knob, not a semantics knob. Worker URLs are serving-time
	// configuration: never persisted by Save, supplied again at load time
	// via LoadDistributed/LoadFileDistributed.
	ShardWorkers []string
	// DcTopK bounds how many nearest-neighbor inter-representative distance
	// (Dc) entries each representative retains per indexed length: the index
	// keeps, per representative, only the k smallest entries of its Dc row
	// (plus the exact row sum), so Dc memory is O(groups·k) instead of
	// O(groups²). 0 selects the default retention (currently 32); negative
	// retains every entry — the dense-equivalent layout. Purely a memory
	// knob: every query answer, recommendation and maintenance result is
	// bit-identical at every setting, because the query paths never read the
	// stored Dc entries — only state derived exactly at build time (see the
	// "Index memory" section of the package documentation).
	DcTopK int
	// RebuildDrift tunes the amortized rebuild policy of incremental
	// maintenance (Append and Extend): when the fraction of indexed
	// subsequences that joined incrementally (since the last full offline
	// build) would exceed this value after a maintenance step, the base is
	// rebuilt from scratch over the final data instead — bounding how far
	// the grouping can drift from what Algorithm 1 would build fresh. The
	// rebuild keeps the currently-indexed length set. 0 selects the default
	// of 0.25; negative disables amortized rebuilds (maintenance stays
	// incremental forever).
	RebuildDrift float64
	// Normalize selects input normalization; default is the paper's
	// dataset-wide min-max scaling.
	Normalize NormalizeMode
	// SearchAllLengths disables the Sec. 5.3 early-stop rule for MatchAny
	// queries, scanning every indexed length.
	SearchAllLengths bool
	// CandidateLimit bounds how many members of the selected group a
	// similarity query verifies with DTW (0 = no fixed limit; the pivot
	// walk is then bounded by Patience).
	CandidateLimit int
	// Patience bounds the in-group pivot walk: mining stops after this
	// many consecutive non-improving members (0 = a paper-faithful default
	// of 32; negative = exhaustive verification of the chosen group).
	Patience int
	// Progress, when non-nil, reports offline-construction progress: it is
	// called after each indexed subsequence length finishes grouping with
	// the completed and total length counts. Calls are serialized and done
	// increases strictly from 1 to total. Useful for long builds driven
	// from a service (see internal/hub).
	Progress func(done, total int)
	// Cancel, when non-nil, aborts an in-flight Build between lengths once
	// the channel is closed; Build then returns ErrBuildCanceled. Already
	// completed work is discarded.
	Cancel <-chan struct{}
}

func (o Options) toCore() (core.BuildConfig, error) {
	if o.ST <= 0 || math.IsNaN(o.ST) || math.IsInf(o.ST, 0) {
		return core.BuildConfig{}, fmt.Errorf("onex: Options.ST must be positive, got %v", o.ST)
	}
	if o.CandidateLimit < 0 {
		return core.BuildConfig{}, fmt.Errorf("onex: Options.CandidateLimit must be ≥ 0, got %d", o.CandidateLimit)
	}
	if o.Shards < 0 {
		return core.BuildConfig{}, fmt.Errorf("onex: Options.Shards must be ≥ 0, got %d", o.Shards)
	}
	workers := o.Workers
	if workers == 0 {
		workers = o.Parallelism
	}
	return core.BuildConfig{
		ST:           o.ST,
		Lengths:      o.Lengths,
		Seed:         o.Seed,
		Workers:      workers,
		DcTopK:       o.DcTopK,
		RebuildDrift: o.RebuildDrift,
		Normalize:    core.NormalizeMode(o.Normalize),
		Progress:     o.Progress,
		Cancel:       o.Cancel,
		Query: query.Options{
			DisableEarlyStop: o.SearchAllLengths,
			CandidateLimit:   o.CandidateLimit,
			Patience:         o.Patience,
			Parallelism:      o.Parallelism,
		},
	}, nil
}

// NormalizeMode selects how input data is normalized before indexing.
type NormalizeMode int

const (
	// NormalizeDataset min-max scales using the dataset-wide min and max —
	// the paper's scheme (Sec. 6.1) and the default.
	NormalizeDataset NormalizeMode = NormalizeMode(core.NormalizeDataset)
	// NormalizePerSeries min-max scales each series independently; useful
	// when series live on unrelated scales (tax rates vs growth rates).
	NormalizePerSeries NormalizeMode = NormalizeMode(core.NormalizePerSeries)
	// NormalizeNone indexes the values as given.
	NormalizeNone NormalizeMode = NormalizeMode(core.NormalizeNone)
)

// MatchMode selects the MATCH clause of similarity queries (Q1).
type MatchMode int

const (
	// MatchExact considers only subsequences of the query's own length.
	MatchExact MatchMode = MatchMode(query.MatchExact)
	// MatchAny considers subsequences of every indexed length.
	MatchAny MatchMode = MatchMode(query.MatchAny)
)

// Degree is the paper's similarity-strength scale (Sec. 4.2).
type Degree int

const (
	// Strict similarity: thresholds below the point where half the
	// precomputed groups would merge.
	Strict Degree = iota
	// Medium similarity: between the half-merge and all-merge thresholds.
	Medium
	// Loose similarity: at or beyond the threshold merging all groups.
	Loose
)

// String returns the paper's S/M/L letter.
func (d Degree) String() string {
	switch d {
	case Strict:
		return "S"
	case Medium:
		return "M"
	case Loose:
		return "L"
	default:
		return "?"
	}
}
