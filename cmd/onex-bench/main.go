// Command onex-bench regenerates the paper's evaluation tables and figures
// (Sec. 6) on this implementation.
//
// Usage:
//
//	onex-bench [flags]
//
//	-exp string      experiment id: fig2..fig8, table1..table4, "parallel", "stream", "shard", "load", "kernel", "dist", or "all" (default "all")
//	-datasets string comma-separated subset of the six paper datasets
//	-st float        similarity threshold (default 0.2, the paper's sweet spot)
//	-scale float     multiplier on bench-scale dataset cardinalities (default 1)
//	-lengths int     number of indexed subsequence lengths (default 16)
//	-queries int     similarity queries per dataset, half in/half out (default 20)
//	-repeats int     timing repetitions per query (default 3; paper uses 5)
//	-seed int        RNG seed (default 1)
//	-full            paper-scale datasets and all lengths (slow: hours)
//	-quiet           suppress progress lines
//
// Examples:
//
//	onex-bench -exp fig2
//	onex-bench -exp table4 -full
//	onex-bench -datasets ItalyPower,ECG -exp all
//	onex-bench -exp parallel -parallel-out BENCH_parallel.json
//
// The "parallel" experiment is this implementation's own sequential-vs-
// parallel sweep (not a paper figure): it times the offline build, single
// BestMatch queries and BestMatchBatch at worker counts 1..GOMAXPROCS,
// verifies the answers are identical at every count, and writes the
// machine-readable report to -parallel-out. The "shard" experiment sweeps
// the intra-dataset sharded engine at shard counts 1/2/4/8 the same way
// (build + query/batch/k-NN latency, per-shard index footprint, built-in
// unsharded-equivalence check), writing to -shard-out. The "load"
// experiment boots a live in-process onex-server and drives it with
// closed-loop mixed traffic (sync queries, uniform batches, async jobs) at
// client counts 1..16, writing latency-vs-offered-load to -load-out. The
// "kernel" experiment is the single-goroutine DTW microbench: the fused
// cache-blocked kernel against the verbatim pre-optimization two-row
// kernel, with a built-in bitwise equivalence check, writing to
// -kernel-out. The "dist" experiment serves one dataset through the local
// and worker-backed (shardrpc over loopback HTTP) shard transports at each
// shard count, timing build/ship and the query paths with a built-in
// bit-identical-answers check, writing to -dist-out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"onex/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "onex-bench:", err)
		os.Exit(1)
	}
}

// emitReport prints a sweep's tables, writes its JSON report to path and
// summarizes — the shared tail of the report-emitting experiments.
func emitReport(stdout io.Writer, tables []bench.Table, path string,
	write func(io.Writer) error, summary string) error {

	for _, t := range tables {
		if err := t.Format(stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(stdout, "wrote %s (%s)\n", path, summary)
	return err
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("onex-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id (fig2..fig8, table1..table4, all)")
		datasets = fs.String("datasets", "", "comma-separated dataset subset")
		st       = fs.Float64("st", 0.2, "similarity threshold")
		scale    = fs.Float64("scale", 1, "dataset scale multiplier")
		lengths  = fs.Int("lengths", 16, "number of indexed lengths")
		queries  = fs.Int("queries", 20, "queries per dataset")
		repeats  = fs.Int("repeats", 3, "timing repetitions per query")
		seed     = fs.Int64("seed", 1, "RNG seed")
		full     = fs.Bool("full", false, "paper-scale datasets and all lengths")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		parOut   = fs.String("parallel-out", "BENCH_parallel.json",
			"output path of the -exp parallel JSON report")
		streamOut = fs.String("stream-out", "BENCH_stream.json",
			"output path of the -exp stream JSON report")
		shardOut = fs.String("shard-out", "BENCH_shard.json",
			"output path of the -exp shard JSON report")
		loadOut = fs.String("load-out", "BENCH_load.json",
			"output path of the -exp load JSON report")
		kernelOut = fs.String("kernel-out", "BENCH_kernel.json",
			"output path of the -exp kernel JSON report")
		distOut = fs.String("dist-out", "BENCH_dist.json",
			"output path of the -exp dist JSON report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", *scale)
	}

	cfg := bench.Config{
		ST:          *st,
		Seed:        *seed,
		Scale:       *scale,
		Full:        *full,
		LengthCount: *lengths,
		Queries:     *queries,
		Repeats:     *repeats,
	}
	if !*quiet {
		cfg.Progress = stderr
	}
	if *datasets != "" {
		for _, d := range strings.Split(*datasets, ",") {
			if d = strings.TrimSpace(d); d != "" {
				cfg.Datasets = append(cfg.Datasets, d)
			}
		}
	}
	if *exp == "stream" {
		rep, tables, err := bench.RunStreamSweep(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *streamOut,
			func(w io.Writer) error { return bench.WriteStreamReport(rep, w) },
			fmt.Sprintf("best sweep point: incremental append %.1fx cheaper than per-batch rebuilds",
				rep.LargestSpeedup))
	}
	if *exp == "load" {
		rep, tables, err := bench.RunServeLoad(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *loadOut,
			func(w io.Writer) error { return bench.WriteLoadReport(rep, w) },
			fmt.Sprintf("gomaxprocs=%d, peak %.0f req/s with p99 %.2fms",
				rep.GOMAXPROCS, rep.PeakThroughput, rep.P99AtPeak))
	}
	if *exp == "kernel" {
		rep, tables, err := bench.RunKernelSweep(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *kernelOut,
			func(w io.Writer) error { return bench.WriteKernelReport(rep, w) },
			fmt.Sprintf("bit-identical=%v, min speedup %.2fx, geomean %.2fx",
				rep.Equivalent, rep.MinSpeedup, rep.GeoMeanSpeedup))
	}
	if *exp == "dist" {
		rep, tables, err := bench.RunDistSweep(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *distOut,
			func(w io.Writer) error { return bench.WriteDistReport(rep, w) },
			fmt.Sprintf("answers bit-identical=%v, worst remote query overhead %.2fx",
				rep.Equivalent, rep.WorstQueryOverhead))
	}
	if *exp == "shard" {
		rep, tables, err := bench.RunShardSweep(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *shardOut,
			func(w io.Writer) error { return bench.WriteShardReport(rep, w) },
			fmt.Sprintf("gomaxprocs=%d, answers unsharded-equivalent=%v, best query speedup %.2fx, best build speedup %.2fx",
				rep.GOMAXPROCS, rep.Equivalent, rep.BestQuerySpeedup, rep.BestBuildSpeedup))
	}
	if *exp == "parallel" {
		rep, tables, err := bench.RunParallelSweep(cfg)
		if err != nil {
			return err
		}
		return emitReport(stdout, tables, *parOut,
			func(w io.Writer) error { return bench.WriteParallelReport(rep, w) },
			fmt.Sprintf("gomaxprocs=%d, best query speedup %.2fx, best batch speedup %.2fx",
				rep.GOMAXPROCS, rep.BestQuerySpeedup, rep.BestBatchSpeedup))
	}

	session, err := bench.NewSession(cfg)
	if err != nil {
		return err
	}

	if *exp == "all" {
		return bench.RunAll(session, stdout)
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s, all)", *exp, strings.Join(bench.IDs(), ", "))
	}
	tables, err := e.Run(session)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Format(stdout); err != nil {
			return err
		}
	}
	return nil
}
