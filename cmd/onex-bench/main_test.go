package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errW bytes.Buffer
	args := []string{"-exp", "table4", "-datasets", "ItalyPower",
		"-scale", "0.2", "-lengths", "5", "-queries", "2", "-repeats", "1", "-quiet"}
	if err := run(args, &out, &errW); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 4") {
		t.Errorf("output missing table: %q", out.String())
	}
	if !strings.Contains(out.String(), "ItalyPower") {
		t.Error("output missing dataset row")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errW bytes.Buffer
	err := run([]string{"-exp", "fig99"}, &out, &errW)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	var out, errW bytes.Buffer
	err := run([]string{"-exp", "table4", "-datasets", "Bogus", "-quiet"}, &out, &errW)
	if err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestRunBadFlagValues(t *testing.T) {
	cases := [][]string{
		{"-st", "-1", "-exp", "table4"},
		{"-scale", "0", "-exp", "table4"},
		{"-queries", "1", "-exp", "table4"},
		{"-notaflag"},
	}
	for _, args := range cases {
		var out, errW bytes.Buffer
		if err := run(args, &out, &errW); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunProgressGoesToStderr(t *testing.T) {
	var out, errW bytes.Buffer
	args := []string{"-exp", "fig6", "-datasets", "ItalyPower",
		"-scale", "0.2", "-lengths", "4", "-queries", "2", "-repeats", "1"}
	if err := run(args, &out, &errW); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errW.String(), "ST=") {
		t.Error("expected progress lines on stderr")
	}
	if strings.Contains(out.String(), "…") {
		t.Error("progress leaked into stdout")
	}
}
