package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onex/internal/bench"
)

func TestRunParallelSweepWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "parallel", "-scale", "0.5", "-queries", "4",
		"-repeats", "1", "-quiet", "-parallel-out", out}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Sequential vs parallel sweep") {
		t.Errorf("missing sweep table in output: %q", stdout.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ParallelReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Dataset.Series < 64 {
		t.Errorf("sweep base has %d series, want ≥ 64", rep.Dataset.Series)
	}
	if !rep.Equivalent {
		t.Error("sweep did not verify parallel/sequential equivalence")
	}
	if len(rep.Build) == 0 || len(rep.Query) == 0 || len(rep.Batch) == 0 {
		t.Errorf("report missing stages: %+v", rep)
	}
	for _, pt := range rep.Query {
		if pt.Seconds <= 0 {
			t.Errorf("non-positive timing: %+v", pt)
		}
	}
	if rep.GOMAXPROCS < 1 || rep.Queries != 4 {
		t.Errorf("report metadata wrong: gomaxprocs=%d queries=%d", rep.GOMAXPROCS, rep.Queries)
	}
}
