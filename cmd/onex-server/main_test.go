package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer("", "ItalyPower", 0.25, 6, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.routes())
	t.Cleanup(hs.Close)
	return srv, hs
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: code %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantCode int) map[string]any {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: code %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerHealthAndStats(t *testing.T) {
	_, hs := testServer(t)
	health := getJSON(t, hs.URL+"/healthz", http.StatusOK)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	stats := getJSON(t, hs.URL+"/stats", http.StatusOK)
	if stats["dataset"] != "ItalyPower" {
		t.Errorf("stats dataset = %v", stats["dataset"])
	}
	if reps, ok := stats["representatives"].(float64); !ok || reps <= 0 {
		t.Errorf("stats representatives = %v", stats["representatives"])
	}
}

func TestServerMatch(t *testing.T) {
	srv, hs := testServer(t)
	// Use an indexed length for an exact match.
	lengths := srv.base.Lengths()
	l := lengths[len(lengths)/2]
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.5
	}
	out := postJSON(t, hs.URL+"/match", matchRequest{Query: q, Mode: "exact"}, http.StatusOK)
	if out["length"].(float64) != float64(l) {
		t.Errorf("match length = %v, want %d", out["length"], l)
	}
	if _, ok := out["distance"].(float64); !ok {
		t.Errorf("match distance missing: %v", out)
	}
	// k-NN.
	out = postJSON(t, hs.URL+"/match", matchRequest{Query: q, Mode: "any", K: 3}, http.StatusOK)
	ms, ok := out["matches"].([]any)
	if !ok || len(ms) != 3 {
		t.Errorf("k-NN returned %v", out)
	}
}

func TestServerMatchErrors(t *testing.T) {
	_, hs := testServer(t)
	postJSON(t, hs.URL+"/match", matchRequest{Query: nil}, http.StatusBadRequest)
	postJSON(t, hs.URL+"/match", matchRequest{Query: []float64{1}, Mode: "bogus"}, http.StatusBadRequest)
	// Raw garbage body.
	resp, err := http.Post(hs.URL+"/match", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: code %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(hs.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /match: code %d, want 405", resp.StatusCode)
	}
}

func TestServerRange(t *testing.T) {
	srv, hs := testServer(t)
	lengths := srv.base.Lengths()
	l := lengths[len(lengths)/2]
	q := make([]float64, l)
	for i := range q {
		q[i] = 0.5
	}
	out := postJSON(t, hs.URL+"/range", rangeRequest{Query: q, Length: l, Radius: 0.5}, http.StatusOK)
	if _, ok := out["count"].(float64); !ok {
		t.Errorf("range response missing count: %v", out)
	}
	postJSON(t, hs.URL+"/range", rangeRequest{Query: q, Length: l, Radius: -1}, http.StatusBadRequest)
}

func TestServerSeasonalAndRecommend(t *testing.T) {
	srv, hs := testServer(t)
	lengths := srv.base.Lengths()
	l := lengths[len(lengths)/2]
	out := getJSON(t, fmt.Sprintf("%s/seasonal?length=%d", hs.URL, l), http.StatusOK)
	if _, ok := out["count"].(float64); !ok {
		t.Errorf("seasonal response: %v", out)
	}
	out = getJSON(t, fmt.Sprintf("%s/seasonal?series=0&length=%d", hs.URL, l), http.StatusOK)
	if _, ok := out["patterns"]; !ok {
		t.Errorf("seasonal sample response: %v", out)
	}
	getJSON(t, hs.URL+"/seasonal?length=abc", http.StatusBadRequest)
	getJSON(t, fmt.Sprintf("%s/seasonal?series=xyz&length=%d", hs.URL, l), http.StatusBadRequest)

	out = getJSON(t, hs.URL+"/recommend?degree=S", http.StatusOK)
	if out["degree"] != "S" || out["low"].(float64) != 0 {
		t.Errorf("recommend = %v", out)
	}
	getJSON(t, hs.URL+"/recommend?degree=Q", http.StatusBadRequest)
	getJSON(t, hs.URL+"/recommend?degree=M&length=abc", http.StatusBadRequest)
	getJSON(t, fmt.Sprintf("%s/recommend?degree=M&length=%d", hs.URL, l), http.StatusOK)
}

func TestNewServerErrors(t *testing.T) {
	if _, err := newServer("", "NotADataset", 0.2, 6, 0.2, 1); err == nil {
		t.Error("unknown dataset: want error")
	}
	if _, err := newServer("/no/such/file.tsv", "", 0.2, 6, 0.2, 1); err == nil {
		t.Error("missing file: want error")
	}
	if _, err := newServer("", "ECG", -1, 6, 0.2, 1); err == nil {
		t.Error("bad ST: want error")
	}
}
