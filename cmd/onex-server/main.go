// Command onex-server exposes an ONEX base over HTTP — the service form of
// the paper's interactive exploration tool. It loads or generates a dataset,
// builds the base once (the paper's one-time preprocessing step), and
// answers the query classes as JSON.
//
// Usage:
//
//	onex-server [-addr :8080] [-data file.tsv | -generate ECG] [-st 0.2] [-lengths 16] [-scale 0.25]
//
// Endpoints (all GET unless noted):
//
//	POST /match      {"query":[...], "mode":"any|exact", "k":5}  → best match(es)
//	POST /range      {"query":[...], "length":24, "radius":0.2}  → all within radius
//	GET  /seasonal?series=3&length=24                            → recurring patterns of a series
//	GET  /seasonal?length=24                                     → dataset-wide patterns
//	GET  /recommend?degree=S&length=-1                           → threshold range
//	GET  /stats                                                  → base statistics
//	GET  /healthz                                                → liveness
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"onex"
	"onex/internal/dataset"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataPath = flag.String("data", "", "UCR-format dataset file")
		genName  = flag.String("generate", "ECG", "synthetic dataset to generate when -data is unset")
		st       = flag.Float64("st", 0.2, "similarity threshold")
		lengths  = flag.Int("lengths", 16, "number of indexed lengths")
		scale    = flag.Float64("scale", 0.25, "synthetic dataset scale")
		seed     = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	srv, err := newServer(*dataPath, *genName, *st, *lengths, *scale, *seed)
	if err != nil {
		log.Fatal("onex-server: ", err)
	}
	log.Printf("onex-server: base ready (%d representatives), listening on %s",
		srv.base.Stats().Representatives, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server holds the immutable base; handlers are safe for concurrent use.
type server struct {
	base    *onex.Base
	name    string
	started time.Time
}

func newServer(dataPath, genName string, st float64, lengths int, scale float64, seed int64) (*server, error) {
	var series []onex.Series
	var name string
	if dataPath != "" {
		d, err := dataset.LoadUCRFile(dataPath)
		if err != nil {
			return nil, err
		}
		name = d.Name
		for _, s := range d.Series {
			series = append(series, onex.Series{Label: s.Label, Values: s.Values})
		}
	} else {
		sp, ok := dataset.ByName(genName)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q", genName)
		}
		d := sp.Scaled(scale).Generate(seed)
		name = sp.Name
		for _, s := range d.Series {
			series = append(series, onex.Series{Label: s.Label, Values: s.Values})
		}
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	base, err := onex.Build(name, series, onex.Options{
		ST:      st,
		Lengths: spreadLengths(maxLen, lengths),
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	return &server{base: base, name: name, started: time.Now()}, nil
}

func spreadLengths(max, count int) []int {
	if count <= 0 || max < 2 {
		return nil
	}
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		l := 2 + i*(max-2)/count
		if count > 1 {
			l = 2 + i*(max-2)/(count-1)
		}
		if l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("GET /seasonal", s.handleSeasonal)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type httpError struct {
	code int
	msg  string
}

func (e httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("onex-server: encode: %v", err)
	}
}

func writeErr(w http.ResponseWriter, err error) {
	var he httpError
	if errors.As(err, &he) {
		writeJSON(w, he.code, map[string]string{"error": he.msg})
		return
	}
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

type matchRequest struct {
	Query []float64 `json:"query"`
	Mode  string    `json:"mode"` // "any" (default) or "exact"
	K     int       `json:"k"`    // 0/1 = best match; >1 = k-NN
}

type matchResponse struct {
	SeriesID int       `json:"seriesId"`
	Start    int       `json:"start"`
	Length   int       `json:"length"`
	Distance float64   `json:"distance"`
	Values   []float64 `json:"values,omitempty"`
}

func toMatchResponse(m onex.Match, withValues bool) matchResponse {
	r := matchResponse{
		SeriesID: m.SeriesID, Start: m.Start, Length: m.Length, Distance: m.Distance,
	}
	if withValues {
		r.Values = m.Values
	}
	return r
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req matchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()})
		return
	}
	mode := onex.MatchAny
	switch req.Mode {
	case "", "any":
	case "exact":
		mode = onex.MatchExact
	default:
		writeErr(w, httpError{http.StatusBadRequest, `mode must be "any" or "exact"`})
		return
	}
	withValues := r.URL.Query().Get("values") == "true"
	if req.K > 1 {
		ms, err := s.base.BestKMatches(req.Query, mode, req.K)
		if err != nil {
			writeErr(w, err)
			return
		}
		out := make([]matchResponse, 0, len(ms))
		for _, m := range ms {
			out = append(out, toMatchResponse(m, withValues))
		}
		writeJSON(w, http.StatusOK, map[string]any{"matches": out})
		return
	}
	m, err := s.base.BestMatch(req.Query, mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toMatchResponse(m, withValues))
}

type rangeRequest struct {
	Query  []float64 `json:"query"`
	Length int       `json:"length"`
	Radius float64   `json:"radius"`
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()})
		return
	}
	ms, err := s.base.RangeSearch(req.Query, req.Length, req.Radius)
	if err != nil {
		writeErr(w, err)
		return
	}
	type rangeResponse struct {
		matchResponse
		Guaranteed bool `json:"guaranteed"`
	}
	out := make([]rangeResponse, 0, len(ms))
	for _, m := range ms {
		out = append(out, rangeResponse{toMatchResponse(m.Match, false), m.Guaranteed})
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "results": out})
}

func (s *server) handleSeasonal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	length, err := strconv.Atoi(q.Get("length"))
	if err != nil {
		writeErr(w, httpError{http.StatusBadRequest, "length must be an integer"})
		return
	}
	var patterns []onex.Pattern
	if sid := q.Get("series"); sid != "" {
		id, err := strconv.Atoi(sid)
		if err != nil {
			writeErr(w, httpError{http.StatusBadRequest, "series must be an integer"})
			return
		}
		patterns, err = s.base.Seasonal(id, length)
		if err != nil {
			writeErr(w, err)
			return
		}
	} else {
		patterns, err = s.base.SeasonalAll(length)
		if err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(patterns), "patterns": patterns})
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var deg onex.Degree
	switch q.Get("degree") {
	case "S", "s":
		deg = onex.Strict
	case "M", "m":
		deg = onex.Medium
	case "L", "l":
		deg = onex.Loose
	default:
		writeErr(w, httpError{http.StatusBadRequest, "degree must be S, M or L"})
		return
	}
	length := -1
	if ls := q.Get("length"); ls != "" {
		var err error
		if length, err = strconv.Atoi(ls); err != nil {
			writeErr(w, httpError{http.StatusBadRequest, "length must be an integer"})
			return
		}
	}
	rng, err := s.base.RecommendThreshold(deg, length)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"degree": deg.String(), "low": rng.Low, "high": rng.High,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.base.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":         s.name,
		"st":              s.base.ST(),
		"representatives": st.Representatives,
		"subsequences":    st.Subsequences,
		"indexBytes":      st.IndexBytes,
		"buildSeconds":    st.BuildTime.Seconds(),
		"stHalf":          st.STHalf,
		"stFinal":         st.STFinal,
		"lengths":         s.base.Lengths(),
		"uptimeSeconds":   time.Since(s.started).Seconds(),
	})
}
