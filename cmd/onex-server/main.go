// Command onex-server serves ONEX bases over HTTP — the service form of the
// paper's interactive exploration tool. The entire serving surface lives in
// internal/api (so it is testable and benchmarkable in-process); this
// binary only parses flags, boots the server and handles signals.
//
// Usage:
//
//	onex-server [-addr :8080] [-data file.tsv | -generate ECG] [-st 0.2]
//	            [-lengths 16] [-scale 0.25] [-seed 1]
//	            [-snapshot-dir dir] [-cache-entries 1024] [-build-workers 2]
//	            [-shard-workers http://w1:9102,http://w2:9102]
//	            [-job-workers 2] [-max-jobs 1024] [-job-ttl 10m] [-legacy]
//	            [-log-level info] [-log-format text] [-slow-query 0]
//	            [-pprof]
//	onex-server -role worker [-addr :9102] [-log-level info] [-log-format text]
//
// The flags describe the default dataset, registered at startup. With
// -role worker the binary instead serves the stateless shard-worker
// protocol (internal/shardrpc): a coordinator started with -shard-workers
// (or a /v1/datasets registration naming shardWorkers) ships per-shard
// state to the workers and scatters queries to them; answers are
// bit-identical to in-process serving. See README.md in this directory for
// a surface overview and docs/api.md for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"onex/internal/api"
	"onex/internal/shardrpc"
)

// buildLogger turns the -log-level/-log-format flags into the process-wide
// structured logger (also installed as the slog default so stray library
// logging shares the format).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn or error (got %q)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("-log-format must be json or text (got %q)", format)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}

// serve runs hs until it fails or the process receives SIGINT/SIGTERM, then
// drains it; onShutdown (optional) runs after the listener stops accepting.
func serve(hs *http.Server, logger *slog.Logger, onShutdown func()) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		logger.Error("onex-server: serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("onex-server: shutting down (draining in-flight requests)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Warn("onex-server: shutdown", "error", err)
		}
		if onShutdown != nil {
			onShutdown()
		}
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		role         = flag.String("role", "coordinator", `"coordinator" serves the /v1 query surface; "worker" serves the shard-worker protocol (stateless until a coordinator ships shards)`)
		shardWorkers = flag.String("shard-workers", "",
			"comma-separated worker base URLs serving the default dataset's shards (empty = in-process)")
		dataPath     = flag.String("data", "", "UCR-format dataset file for the default dataset")
		genName      = flag.String("generate", "ECG", "synthetic dataset to generate when -data is unset")
		st           = flag.Float64("st", 0.2, "similarity threshold of the default dataset")
		lengths      = flag.Int("lengths", 16, "number of indexed lengths for the default dataset")
		scale        = flag.Float64("scale", 0.25, "synthetic dataset scale")
		seed         = flag.Int64("seed", 1, "RNG seed")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for base snapshots (empty = no persistence)")
		cacheEntries = flag.Int("cache-entries", 1024, "query-result cache capacity (negative disables)")
		buildWorkers = flag.Int("build-workers", 2, "concurrent dataset builds")
		parallelism  = flag.Int("parallelism", 0, "per-query/build worker fan-out (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 0, "intra-dataset shard count of the default dataset (0/1 = unsharded)")
		maxBody      = flag.Int64("max-body-bytes", api.DefaultMaxBody, "request body size cap")
		allowFS      = flag.Bool("allow-fs", false,
			"let /v1/datasets register from server filesystem paths (path/snapshot fields)")
		legacy = flag.Bool("legacy", false,
			"serve the deprecated pre-/v1 endpoints (/match, /range, /seasonal, /recommend, /stats)")
		jobWorkers = flag.Int("job-workers", 2, "concurrent async query jobs")
		maxJobs    = flag.Int("max-jobs", 1024, "job table bound (live + retained terminal jobs)")
		jobTTL     = flag.Duration("job-ttl", 10*time.Minute, "how long finished job results stay pollable")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		slowQuery  = flag.Duration("slow-query", 0,
			"log requests at or above this duration at warn level with a slowQuery marker (0 = off)")
		pprofFlag = flag.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof/ (profiles expose memory contents; opt-in)")
		healthProbe = flag.Duration("health-probe", 0,
			"background shard-worker health-probe interval (0 = 1s default; only probes workers already contacted)")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onex-server:", err)
		os.Exit(2)
	}

	switch *role {
	case "worker":
		worker := shardrpc.NewWorker(logger)
		logger.Info("onex-server: worker ready (no shards yet — a coordinator ships them)",
			"addr", *addr)
		serve(&http.Server{
			Addr:              *addr,
			Handler:           worker.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			// No ReadTimeout: shard shipments can be large and the protocol
			// is coordinator-to-worker only (not exposed to tenants).
			WriteTimeout: 120 * time.Second,
			IdleTimeout:  120 * time.Second,
		}, logger, nil)
		return
	case "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "onex-server: -role must be coordinator or worker (got %q)\n", *role)
		os.Exit(2)
	}

	var workers []string
	if *shardWorkers != "" {
		for _, u := range strings.Split(*shardWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workers = append(workers, u)
			}
		}
	}

	srv, err := api.New(api.Config{
		DataPath: *dataPath, Generator: *genName, ST: *st, Lengths: *lengths,
		Scale: *scale, Seed: *seed, Parallelism: *parallelism, Shards: *shards,
		ShardWorkers: workers,
		SnapshotDir:  *snapshotDir, CacheEntries: *cacheEntries,
		BuildWorkers: *buildWorkers, MaxBody: *maxBody, AllowFS: *allowFS,
		Legacy: *legacy, JobWorkers: *jobWorkers, MaxJobs: *maxJobs, JobTTL: *jobTTL,
		Logger: logger, SlowQuery: *slowQuery, Pprof: *pprofFlag,
		HealthProbe: *healthProbe,
	})
	if err != nil {
		logger.Error("onex-server: startup", "error", err)
		os.Exit(1)
	}
	defer srv.Close()

	info, _ := srv.DefaultInfo()
	logger.Info("onex-server: ready",
		"dataset", srv.DefaultName(),
		"representatives", info.Representatives,
		"addr", *addr,
		"pprof", *pprofFlag)

	serve(&http.Server{
		Addr:              *addr,
		Handler:           srv.Routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}, logger, srv.Close) // Close aborts in-flight jobs and builds cleanly
}
