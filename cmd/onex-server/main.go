// Command onex-server serves ONEX bases over HTTP — the service form of the
// paper's interactive exploration tool, scaled from a single-base demo to a
// multi-dataset hub (internal/hub): datasets are registered at runtime,
// built asynchronously on a bounded worker pool, optionally snapshotted to
// disk for instant reloads, and queried through a bounded LRU result cache.
//
// Usage:
//
//	onex-server [-addr :8080] [-data file.tsv | -generate ECG] [-st 0.2]
//	            [-lengths 16] [-scale 0.25] [-seed 1]
//	            [-snapshot-dir dir] [-cache-entries 1024] [-build-workers 2]
//
// The flags describe the default dataset, registered at startup exactly as
// previous single-dataset versions served it; the legacy unversioned
// endpoints keep working against it. See README.md in this directory for
// the full v1 API with curl examples.
//
// Versioned surface (JSON in/out; errors are {"error": "..."}):
//
//	POST   /v1/datasets                  register a dataset (async build)
//	GET    /v1/datasets                  list datasets + lifecycle states
//	GET    /v1/datasets/{name}           one dataset's status/metadata
//	DELETE /v1/datasets/{name}[?purge=1] drop (purge also deletes snapshot)
//	POST   /v1/datasets/{name}/match     best match / k-NN (Q1)
//	POST   /v1/datasets/{name}/match/batch  many best-match queries at once
//	POST   /v1/datasets/{name}/range     range search within a radius
//	POST   /v1/datasets/{name}/extend    incrementally add series
//	POST   /v1/datasets/{name}/append    stream points onto an existing series
//	GET    /v1/datasets/{name}/seasonal  recurring patterns (Q2)
//	GET    /v1/datasets/{name}/recommend threshold recommendation (Q3)
//	GET    /v1/datasets/{name}/stats     per-dataset stats + cache counters
//	GET    /v1/stats                     hub-wide stats (cache hit/miss, states)
//	GET    /healthz                      liveness
//
// Legacy single-dataset endpoints (served by the default dataset):
// POST /match, POST /range, GET /seasonal, GET /recommend, GET /stats.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"onex"
	"onex/internal/hub"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataPath     = flag.String("data", "", "UCR-format dataset file for the default dataset")
		genName      = flag.String("generate", "ECG", "synthetic dataset to generate when -data is unset")
		st           = flag.Float64("st", 0.2, "similarity threshold of the default dataset")
		lengths      = flag.Int("lengths", 16, "number of indexed lengths for the default dataset")
		scale        = flag.Float64("scale", 0.25, "synthetic dataset scale")
		seed         = flag.Int64("seed", 1, "RNG seed")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for base snapshots (empty = no persistence)")
		cacheEntries = flag.Int("cache-entries", 1024, "query-result cache capacity (negative disables)")
		buildWorkers = flag.Int("build-workers", 2, "concurrent dataset builds")
		parallelism  = flag.Int("parallelism", 0, "per-query/build worker fan-out (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 0, "intra-dataset shard count of the default dataset (0/1 = unsharded)")
		maxBody      = flag.Int64("max-body-bytes", defaultMaxBody, "request body size cap")
		allowFS      = flag.Bool("allow-fs", false,
			"let /v1/datasets register from server filesystem paths (path/snapshot fields)")
	)
	flag.Parse()

	srv, err := newServer(serverConfig{
		DataPath: *dataPath, Generator: *genName, ST: *st, Lengths: *lengths,
		Scale: *scale, Seed: *seed, Parallelism: *parallelism, Shards: *shards,
		SnapshotDir: *snapshotDir, CacheEntries: *cacheEntries,
		BuildWorkers: *buildWorkers, MaxBody: *maxBody, AllowFS: *allowFS,
	})
	if err != nil {
		log.Fatal("onex-server: ", err)
	}
	defer srv.hub.Close()

	info, _ := srv.defaultInfo()
	log.Printf("onex-server: default dataset %q ready (%d representatives), listening on %s",
		srv.defaultName, info.Representatives, *addr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal("onex-server: ", err)
	case <-ctx.Done():
		stop()
		log.Print("onex-server: shutting down (draining in-flight queries)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Print("onex-server: shutdown: ", err)
		}
		srv.hub.Close() // aborts in-flight builds cleanly
	}
}

const defaultMaxBody = 8 << 20 // 8 MiB: ~1M-point query vectors

// maxShards bounds client-requested shard counts (the engine additionally
// clamps to the dataset's series count).
const maxShards = 256

// serverConfig aggregates the startup flags (kept as a struct so tests can
// build servers directly).
type serverConfig struct {
	DataPath, Generator string
	ST                  float64
	Lengths             int
	Scale               float64
	Seed                int64
	// Parallelism is the default dataset's build/query worker fan-out
	// (0 = GOMAXPROCS).
	Parallelism int
	// Shards is the default dataset's intra-dataset shard count
	// (0/1 = unsharded; answers are identical at every count).
	Shards       int
	SnapshotDir  string
	CacheEntries int
	BuildWorkers int
	MaxBody      int64
	// AllowFS lets v1 registration requests name server filesystem paths
	// (path/snapshot). Off by default: a remote client must not be able to
	// read arbitrary host files. The startup -data flag is unaffected
	// (operator-controlled).
	AllowFS bool
}

// server is the HTTP face of a hub. Handlers are safe for concurrent use.
type server struct {
	hub         *hub.Hub
	defaultName string
	maxBody     int64
	allowFS     bool
	started     time.Time
}

// newServer starts a hub, registers the default dataset per cfg and waits
// for it to become ready, mirroring the old single-dataset startup.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = defaultMaxBody
	}
	h := hub.New(hub.Config{
		BuildWorkers: cfg.BuildWorkers,
		SnapshotDir:  cfg.SnapshotDir,
		CacheEntries: cfg.CacheEntries,
	})
	s := &server{hub: h, maxBody: cfg.MaxBody, allowFS: cfg.AllowFS, started: time.Now()}

	spec := hub.Spec{
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Opts:        onex.Options{ST: cfg.ST, Seed: cfg.Seed, Parallelism: cfg.Parallelism, Shards: cfg.Shards},
		LengthCount: cfg.Lengths,
	}
	name := cfg.Generator
	if cfg.DataPath != "" {
		spec.Path = cfg.DataPath
		name = datasetNameFromPath(cfg.DataPath)
	} else {
		spec.Generator = cfg.Generator
	}
	ds, err := h.Register(name, spec)
	if err != nil {
		h.Close()
		return nil, err
	}
	if err := ds.Wait(context.Background()); err != nil {
		h.Close()
		return nil, fmt.Errorf("default dataset %q: %w", name, err)
	}
	s.defaultName = name
	return s, nil
}

// datasetNameFromPath derives a catalog-safe name from a file path.
func datasetNameFromPath(path string) string {
	base := filepath.Base(path)
	// filepath.Base only understands the host separator; strip Windows-style
	// components regardless of platform.
	if i := strings.LastIndexByte(base, '\\'); i >= 0 {
		base = base[i+1:]
	}
	out := make([]byte, 0, len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 || !isAlnum(out[0]) {
		out = append([]byte{'d'}, out...)
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return string(out)
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (s *server) defaultInfo() (hub.Info, error) {
	ds, err := s.hub.Get(s.defaultName)
	if err != nil {
		return hub.Info{}, err
	}
	return ds.Info(), nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Versioned multi-dataset surface.
	mux.HandleFunc("POST /v1/datasets", s.handleRegister)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetInfo)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDrop)
	mux.HandleFunc("POST /v1/datasets/{name}/match", s.handleMatch)
	mux.HandleFunc("POST /v1/datasets/{name}/match/batch", s.handleMatchBatch)
	mux.HandleFunc("POST /v1/datasets/{name}/range", s.handleRange)
	mux.HandleFunc("POST /v1/datasets/{name}/extend", s.handleExtend)
	mux.HandleFunc("POST /v1/datasets/{name}/append", s.handleAppend)
	mux.HandleFunc("GET /v1/datasets/{name}/seasonal", s.handleSeasonal)
	mux.HandleFunc("GET /v1/datasets/{name}/recommend", s.handleRecommend)
	mux.HandleFunc("GET /v1/datasets/{name}/stats", s.handleDatasetStats)
	mux.HandleFunc("GET /v1/stats", s.handleHubStats)

	// Legacy single-dataset endpoints, served by the default dataset.
	mux.HandleFunc("POST /match", s.handleMatch)
	mux.HandleFunc("POST /range", s.handleRange)
	mux.HandleFunc("GET /seasonal", s.handleSeasonal)
	mux.HandleFunc("GET /recommend", s.handleRecommend)
	mux.HandleFunc("GET /stats", s.handleLegacyStats)
	return mux
}

// ---- request plumbing -------------------------------------------------

type httpError struct {
	code int
	msg  string
}

func (e httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("onex-server: encode: %v", err)
	}
}

// writeErr maps an error onto a structured {"error": ...} response with the
// right status code.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var he httpError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.As(err, &mbe):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, hub.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, hub.ErrExists), errors.Is(err, hub.ErrNotReady),
		errors.Is(err, hub.ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, hub.ErrFailed):
		code = http.StatusInternalServerError
	case errors.Is(err, hub.ErrClosed), errors.Is(err, onex.ErrBuildCanceled):
		// A drift-triggered rebuild inside an append/extend handler aborts
		// with ErrBuildCanceled when the hub shuts down mid-request — a
		// server condition, not a client error.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeStrict reads one JSON value: unknown fields are rejected, the body
// is capped at s.maxBody, and trailing garbage is an error.
func (s *server) decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()}
	}
	if dec.More() {
		return httpError{http.StatusBadRequest, "invalid JSON: trailing data after request object"}
	}
	return nil
}

// dataset resolves the {name} path value, falling back to the default
// dataset for the legacy unversioned routes.
func (s *server) dataset(r *http.Request) (*hub.Dataset, error) {
	name := r.PathValue("name")
	if name == "" {
		name = s.defaultName
	}
	return s.hub.Get(name)
}

// ---- dataset lifecycle ------------------------------------------------

type seriesJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

type registerRequest struct {
	Name      string       `json:"name"`
	Generator string       `json:"generator"`
	Path      string       `json:"path"`
	Snapshot  string       `json:"snapshot"`
	Series    []seriesJSON `json:"series"`
	Scale     float64      `json:"scale"`
	Seed      int64        `json:"seed"`
	ST        float64      `json:"st"`
	Lengths   int          `json:"lengths"`
	// Parallelism bounds the dataset's build and query worker fan-out
	// (0 = GOMAXPROCS; answers are identical for every value).
	Parallelism int `json:"parallelism"`
	// Shards hash-partitions the dataset's series across engine shards
	// built concurrently and queried by scatter-gather (0/1 = unsharded;
	// answers are identical at every count — see /v1/datasets/{name}/stats
	// for the per-shard breakdown).
	Shards int  `json:"shards"`
	Wait   bool `json:"wait"`
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Name == "" {
		writeErr(w, httpError{http.StatusBadRequest, "name is required"})
		return
	}
	if req.Parallelism < 0 {
		writeErr(w, httpError{http.StatusBadRequest, "parallelism must be ≥ 0"})
		return
	}
	// Clamp client-requested fan-out: parallel.Resolve accepts any positive
	// value (it only oversubscribes), but a remote tenant must not be able
	// to make every query spawn thousands of goroutines.
	if limit := 4 * runtime.GOMAXPROCS(0); req.Parallelism > limit {
		req.Parallelism = limit
	}
	if req.Shards < 0 {
		writeErr(w, httpError{http.StatusBadRequest, "shards must be ≥ 0"})
		return
	}
	// Cap the shard count: the engine clamps to the series count anyway,
	// but a remote tenant must not get to size O(shards) allocations before
	// that clamp is known.
	if req.Shards > maxShards {
		writeErr(w, httpError{http.StatusBadRequest,
			fmt.Sprintf("shards must be ≤ %d", maxShards)})
		return
	}
	if (req.Path != "" || req.Snapshot != "") && !s.allowFS {
		writeErr(w, httpError{http.StatusForbidden,
			"filesystem sources (path/snapshot) are disabled; start the server with -allow-fs"})
		return
	}
	st := req.ST
	if st == 0 && req.Snapshot == "" {
		st = 0.2 // the paper's sweet spot (Sec. 6.3)
	}
	lengths := req.Lengths
	if lengths == 0 {
		lengths = 16
	}
	spec := hub.Spec{
		Generator:   req.Generator,
		Path:        req.Path,
		Snapshot:    req.Snapshot,
		Scale:       req.Scale,
		Seed:        req.Seed,
		Opts:        onex.Options{ST: st, Seed: req.Seed, Parallelism: req.Parallelism, Shards: req.Shards},
		LengthCount: lengths,
	}
	for _, sr := range req.Series {
		spec.Series = append(spec.Series, onex.Series{Label: sr.Label, Values: sr.Values})
	}
	ds, err := s.hub.Register(req.Name, spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Wait {
		if err := ds.Wait(r.Context()); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": err.Error(), "dataset": ds.Info(),
			})
			return
		}
		writeJSON(w, http.StatusCreated, ds.Info())
		return
	}
	writeJSON(w, http.StatusAccepted, ds.Info())
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	datasets := s.hub.List()
	infos := make([]hub.Info, 0, len(datasets))
	for _, ds := range datasets {
		infos = append(infos, ds.Info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "datasets": infos})
}

func (s *server) handleDatasetInfo(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

func (s *server) handleDrop(w http.ResponseWriter, r *http.Request) {
	purge := false
	switch v := r.URL.Query().Get("purge"); v {
	case "", "false", "0":
	case "true", "1":
		purge = true
	default:
		writeErr(w, httpError{http.StatusBadRequest, "purge must be true or false"})
		return
	}
	if err := s.hub.Drop(r.PathValue("name"), purge); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": r.PathValue("name"), "purged": purge})
}

type extendRequest struct {
	Series []seriesJSON `json:"series"`
}

func (s *server) handleExtend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req extendRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Series) == 0 {
		writeErr(w, httpError{http.StatusBadRequest, "series must be non-empty"})
		return
	}
	series := make([]onex.Series, 0, len(req.Series))
	for _, sr := range req.Series {
		series = append(series, onex.Series{Label: sr.Label, Values: sr.Values})
	}
	if err := ds.Extend(series); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

type appendRequest struct {
	// SeriesID targets an existing series of the dataset (0-based, as
	// reported by match results). A pointer distinguishes "missing" from 0.
	SeriesID *int      `json:"seriesId"`
	Points   []float64 `json:"points"`
}

// handleAppend serves POST /v1/datasets/{name}/append: streaming point
// ingestion onto one existing series. The grown base swaps in atomically
// (generation bump, cache invalidation, re-snapshot); in-flight queries
// keep answering on the previous base.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req appendRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.SeriesID == nil {
		writeErr(w, httpError{http.StatusBadRequest, "seriesId is required"})
		return
	}
	if *req.SeriesID < 0 {
		writeErr(w, httpError{http.StatusBadRequest, "seriesId must be ≥ 0"})
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, httpError{http.StatusBadRequest, "points must be non-empty"})
		return
	}
	if err := ds.Append(*req.SeriesID, req.Points); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

// ---- queries ----------------------------------------------------------

type matchRequest struct {
	Query []float64 `json:"query"`
	Mode  string    `json:"mode"` // "any" (default) or "exact"
	K     int       `json:"k"`    // 0/1 = best match; >1 = k-NN
}

type matchResponse struct {
	SeriesID int       `json:"seriesId"`
	Start    int       `json:"start"`
	Length   int       `json:"length"`
	Distance float64   `json:"distance"`
	Values   []float64 `json:"values,omitempty"`
}

func toMatchResponse(m onex.Match, withValues bool) matchResponse {
	r := matchResponse{
		SeriesID: m.SeriesID, Start: m.Start, Length: m.Length, Distance: m.Distance,
	}
	if withValues {
		r.Values = m.Values
	}
	return r
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req matchRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	mode := onex.MatchAny
	switch req.Mode {
	case "", "any":
	case "exact":
		mode = onex.MatchExact
	default:
		writeErr(w, httpError{http.StatusBadRequest, `mode must be "any" or "exact"`})
		return
	}
	if req.K < 0 {
		writeErr(w, httpError{http.StatusBadRequest, "k must be ≥ 0"})
		return
	}
	withValues := r.URL.Query().Get("values") == "true"
	ms, err := ds.Match(req.Query, mode, req.K)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.K > 1 {
		out := make([]matchResponse, 0, len(ms))
		for _, m := range ms {
			out = append(out, toMatchResponse(m, withValues))
		}
		writeJSON(w, http.StatusOK, map[string]any{"matches": out})
		return
	}
	writeJSON(w, http.StatusOK, toMatchResponse(ms[0], withValues))
}

type batchMatchRequest struct {
	Queries [][]float64 `json:"queries"`
	Mode    string      `json:"mode"` // "any" (default) or "exact"
}

// batchEntryResponse is one positional result of a batch match: either a
// match or a per-query error.
type batchEntryResponse struct {
	*matchResponse
	Error string `json:"error,omitempty"`
}

func (s *server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req batchMatchRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	mode := onex.MatchAny
	switch req.Mode {
	case "", "any":
	case "exact":
		mode = onex.MatchExact
	default:
		writeErr(w, httpError{http.StatusBadRequest, `mode must be "any" or "exact"`})
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, httpError{http.StatusBadRequest, "queries must be non-empty"})
		return
	}
	withValues := r.URL.Query().Get("values") == "true"
	rs, err := ds.MatchBatch(req.Queries, mode)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]batchEntryResponse, 0, len(rs))
	errors := 0
	for _, br := range rs {
		if br.Err != nil {
			errors++
			out = append(out, batchEntryResponse{Error: br.Err.Error()})
			continue
		}
		m := toMatchResponse(br.Match, withValues)
		out = append(out, batchEntryResponse{matchResponse: &m})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(out), "errors": errors, "results": out,
	})
}

type rangeRequest struct {
	Query  []float64 `json:"query"`
	Length int       `json:"length"`
	Radius float64   `json:"radius"`
	// Exact computes true DTW distances for matches admitted through the
	// Lemma 2 guarantee instead of reporting the ST upper bound.
	Exact bool `json:"exact"`
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req rangeRequest
	if err := s.decodeStrict(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ms, err := ds.Range(req.Query, req.Length, req.Radius, req.Exact)
	if err != nil {
		writeErr(w, err)
		return
	}
	type rangeResponse struct {
		matchResponse
		Guaranteed bool `json:"guaranteed"`
	}
	out := make([]rangeResponse, 0, len(ms))
	for _, m := range ms {
		out = append(out, rangeResponse{toMatchResponse(m.Match, false), m.Guaranteed})
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "results": out})
}

func (s *server) handleSeasonal(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	length, err := strconv.Atoi(q.Get("length"))
	if err != nil {
		writeErr(w, httpError{http.StatusBadRequest, "length must be an integer"})
		return
	}
	seriesID := -1 // dataset-wide
	if sid := q.Get("series"); sid != "" {
		if seriesID, err = strconv.Atoi(sid); err != nil || seriesID < 0 {
			writeErr(w, httpError{http.StatusBadRequest, "series must be a non-negative integer"})
			return
		}
	}
	patterns, err := ds.Seasonal(seriesID, length)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(patterns), "patterns": patterns})
}

func (s *server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q := r.URL.Query()
	var deg onex.Degree
	switch q.Get("degree") {
	case "S", "s":
		deg = onex.Strict
	case "M", "m":
		deg = onex.Medium
	case "L", "l":
		deg = onex.Loose
	default:
		writeErr(w, httpError{http.StatusBadRequest, "degree must be S, M or L"})
		return
	}
	length := -1
	if ls := q.Get("length"); ls != "" {
		var err error
		if length, err = strconv.Atoi(ls); err != nil {
			writeErr(w, httpError{http.StatusBadRequest, "length must be an integer"})
			return
		}
	}
	rng, err := ds.Recommend(deg, length)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"degree": deg.String(), "low": rng.Low, "high": rng.High,
	})
}

// ---- stats ------------------------------------------------------------

func (s *server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Info())
}

func (s *server) handleHubStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"hub":            s.hub.Stats(),
		"defaultDataset": s.defaultName,
		"uptimeSeconds":  time.Since(s.started).Seconds(),
	})
}

// handleLegacyStats preserves the pre-hub /stats response shape for the
// default dataset.
func (s *server) handleLegacyStats(w http.ResponseWriter, r *http.Request) {
	ds, err := s.dataset(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info := ds.Info()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":         info.Name,
		"st":              info.ST,
		"representatives": info.Representatives,
		"subsequences":    info.Subsequences,
		"indexBytes":      info.IndexBytes,
		"buildSeconds":    info.BuildSeconds,
		"stHalf":          info.STHalf,
		"stFinal":         info.STFinal,
		"lengths":         info.Lengths,
		"uptimeSeconds":   time.Since(s.started).Seconds(),
	})
}
