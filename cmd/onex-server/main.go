// Command onex-server serves ONEX bases over HTTP — the service form of the
// paper's interactive exploration tool. The entire serving surface lives in
// internal/api (so it is testable and benchmarkable in-process); this
// binary only parses flags, boots the server and handles signals.
//
// Usage:
//
//	onex-server [-addr :8080] [-data file.tsv | -generate ECG] [-st 0.2]
//	            [-lengths 16] [-scale 0.25] [-seed 1]
//	            [-snapshot-dir dir] [-cache-entries 1024] [-build-workers 2]
//	            [-job-workers 2] [-max-jobs 1024] [-job-ttl 10m] [-legacy]
//
// The flags describe the default dataset, registered at startup. See
// README.md in this directory for a surface overview and docs/api.md for
// the endpoint reference.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"onex/internal/api"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataPath     = flag.String("data", "", "UCR-format dataset file for the default dataset")
		genName      = flag.String("generate", "ECG", "synthetic dataset to generate when -data is unset")
		st           = flag.Float64("st", 0.2, "similarity threshold of the default dataset")
		lengths      = flag.Int("lengths", 16, "number of indexed lengths for the default dataset")
		scale        = flag.Float64("scale", 0.25, "synthetic dataset scale")
		seed         = flag.Int64("seed", 1, "RNG seed")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for base snapshots (empty = no persistence)")
		cacheEntries = flag.Int("cache-entries", 1024, "query-result cache capacity (negative disables)")
		buildWorkers = flag.Int("build-workers", 2, "concurrent dataset builds")
		parallelism  = flag.Int("parallelism", 0, "per-query/build worker fan-out (0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 0, "intra-dataset shard count of the default dataset (0/1 = unsharded)")
		maxBody      = flag.Int64("max-body-bytes", api.DefaultMaxBody, "request body size cap")
		allowFS      = flag.Bool("allow-fs", false,
			"let /v1/datasets register from server filesystem paths (path/snapshot fields)")
		legacy = flag.Bool("legacy", false,
			"serve the deprecated pre-/v1 endpoints (/match, /range, /seasonal, /recommend, /stats)")
		jobWorkers = flag.Int("job-workers", 2, "concurrent async query jobs")
		maxJobs    = flag.Int("max-jobs", 1024, "job table bound (live + retained terminal jobs)")
		jobTTL     = flag.Duration("job-ttl", 10*time.Minute, "how long finished job results stay pollable")
	)
	flag.Parse()

	srv, err := api.New(api.Config{
		DataPath: *dataPath, Generator: *genName, ST: *st, Lengths: *lengths,
		Scale: *scale, Seed: *seed, Parallelism: *parallelism, Shards: *shards,
		SnapshotDir: *snapshotDir, CacheEntries: *cacheEntries,
		BuildWorkers: *buildWorkers, MaxBody: *maxBody, AllowFS: *allowFS,
		Legacy: *legacy, JobWorkers: *jobWorkers, MaxJobs: *maxJobs, JobTTL: *jobTTL,
	})
	if err != nil {
		log.Fatal("onex-server: ", err)
	}
	defer srv.Close()

	info, _ := srv.DefaultInfo()
	log.Printf("onex-server: default dataset %q ready (%d representatives), listening on %s",
		srv.DefaultName(), info.Representatives, *addr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal("onex-server: ", err)
	case <-ctx.Done():
		stop()
		log.Print("onex-server: shutting down (draining in-flight queries, aborting jobs)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Print("onex-server: shutdown: ", err)
		}
		srv.Close() // aborts in-flight jobs and builds cleanly
	}
}
