package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onex"
)

func runScript(t *testing.T, args []string, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func tinyArgs() []string {
	return []string{"-generate", "ItalyPower", "-scale", "0.2", "-lengths", "6", "-st", "0.25"}
}

func TestCLISession(t *testing.T) {
	out := runScript(t, tinyArgs(), "stats\nhelp\nquit\n")
	for _, want := range []string{"representatives=", "SP-Space", "commands:", "onex>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLIMatchAndSeasonal(t *testing.T) {
	out := runScript(t, tinyArgs(), "match 0:2:10\nseasonalall 10\nrecommend S\nrecommend M 10\nquit\n")
	if !strings.Contains(out, "best match: series") {
		t.Errorf("match output missing: %q", out)
	}
	if !strings.Contains(out, "recurring pattern") {
		t.Error("seasonalall output missing")
	}
	if strings.Count(out, "similarity") < 2 {
		t.Error("recommend outputs missing")
	}
}

func TestCLIDesignedQuery(t *testing.T) {
	out := runScript(t, tinyArgs(), "match 0.1,0.2,0.3,0.4,0.5,0.4,0.3,0.2,0.1,0.0\nquit\n")
	if !strings.Contains(out, "best match: series") {
		t.Errorf("designed query failed: %q", out)
	}
}

func TestCLIThresholdAdaptation(t *testing.T) {
	out := runScript(t, tinyArgs(), "threshold 0.5\nstats\nquit\n")
	if !strings.Contains(out, "adapted to ST'=0.500") {
		t.Errorf("threshold output missing: %q", out)
	}
	if !strings.Contains(out, "ST=0.500") {
		t.Error("stats after adaptation should show the new threshold")
	}
}

func TestCLIErrors(t *testing.T) {
	script := strings.Join([]string{
		"match",          // missing arg
		"match 0:1",      // malformed ref
		"match 0:0:9999", // out of range
		"match a,b",      // unparsable values
		"seasonal x 5",   // bad series id
		"recommend X",    // bad degree
		"threshold -3",   // bad threshold
		"definitely-not-a-command",
		"quit",
	}, "\n") + "\n"
	out := runScript(t, tinyArgs(), script)
	if got := strings.Count(out, "error:"); got < 8 {
		t.Errorf("expected ≥8 error lines, got %d in %q", got, out)
	}
}

func TestCLIUnknownFlagAndDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown flag: want error")
	}
	if err := run([]string{"-generate", "Nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown dataset: want error")
	}
	if err := run([]string{"-st"}, strings.NewReader(""), &out); err == nil {
		t.Error("flag without value: want error")
	}
}

func TestCLIKNNAndRange(t *testing.T) {
	out := runScript(t, tinyArgs(), "knn 3 0:2:10\nrange 0.5 0:2:10\nquit\n")
	if !strings.Contains(out, "3 nearest matches") {
		t.Errorf("knn output missing: %q", out)
	}
	if !strings.Contains(out, "matches within 0.5") {
		t.Errorf("range output missing: %q", out)
	}
	// Error paths.
	out = runScript(t, tinyArgs(), "knn x 0:2:10\nknn 3\nrange abc 0:2:10\nquit\n")
	if strings.Count(out, "error:") < 3 {
		t.Errorf("knn/range error handling: %q", out)
	}
}

func TestCLISPSpaceAndPlot(t *testing.T) {
	out := runScript(t, tinyArgs(), "spspace\nplot 0:0:12\nplot 1,2,3,2,1\nquit\n")
	if !strings.Contains(out, "ST_half") || !strings.Contains(out, "global") {
		t.Errorf("spspace output missing: %q", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("plot output missing points: %q", out)
	}
	out = runScript(t, tinyArgs(), "plot\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Error("plot without args should error")
	}
}

func TestCLISaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.onex")
	out := runScript(t, tinyArgs(),
		"save "+path+"\nload "+path+"\nstats\nmatch 0:2:10\nquit\n")
	if !strings.Contains(out, "saved ") {
		t.Errorf("save output missing: %q", out)
	}
	if !strings.Contains(out, "loaded base:") {
		t.Errorf("load output missing: %q", out)
	}
	if !strings.Contains(out, "best match: series") {
		t.Error("loaded base cannot answer queries")
	}
	// Load failure keeps the session alive with the old base.
	out = runScript(t, tinyArgs(), "load /no/such/file\nstats\nquit\n")
	if !strings.Contains(out, "error:") || !strings.Contains(out, "representatives=") {
		t.Errorf("failed load should keep session usable: %q", out)
	}
}

func TestCLILoadUCRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.tsv")
	content := "1\t0.1\t0.2\t0.3\t0.4\t0.5\t0.6\t0.7\t0.8\n2\t0.8\t0.7\t0.6\t0.5\t0.4\t0.3\t0.2\t0.1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runScript(t, []string{"-data", path, "-lengths", "4", "-st", "0.3"}, "stats\nquit\n")
	if !strings.Contains(out, `building ONEX base over "toy"`) {
		t.Errorf("UCR load failed: %q", out)
	}
}

func TestParseQuery(t *testing.T) {
	series := []onex.Series{{Values: []float64{1, 2, 3, 4, 5}}}
	q, err := parseQuery(series, "0:1:3")
	if err != nil || len(q) != 3 || q[0] != 2 {
		t.Errorf("ref parse = %v, %v", q, err)
	}
	q, err = parseQuery(series, "1.5, 2.5,3.5")
	if err != nil || len(q) != 3 || q[2] != 3.5 {
		t.Errorf("list parse = %v, %v", q, err)
	}
	for _, bad := range []string{"9:0:2", "0:9:2", "0:0:0", "x:y:z", "0:1", "a,b"} {
		if _, err := parseQuery(series, bad); err == nil {
			t.Errorf("parseQuery(%q): want error", bad)
		}
	}
}

func TestSpreadHelper(t *testing.T) {
	ls := spread(24, 6)
	if len(ls) == 0 || ls[0] != 2 || ls[len(ls)-1] != 24 {
		t.Errorf("spread(24,6) = %v", ls)
	}
	if got := spread(1, 4); got != nil {
		t.Errorf("spread(1,4) = %v, want nil", got)
	}
	if got := spread(24, 0); got != nil {
		t.Errorf("spread(24,0) = %v, want nil", got)
	}
}

// TestCLIShardedFlags drives a session with the serving knobs the server
// already exposes — -parallelism, -rebuild-drift and -shards — and checks
// the sharded base builds, reports its layout, and answers queries.
func TestCLIShardedFlags(t *testing.T) {
	args := append(tinyArgs(), "-parallelism", "2", "-rebuild-drift", "-1", "-shards", "3")
	out := runScript(t, args, "stats\nmatch 0:2:10\nknn 2 1:0:10\nquit\n")
	if !strings.Contains(out, "shards: 3") {
		t.Errorf("stats output missing shard layout: %q", out)
	}
	if !strings.Contains(out, "best match: series") {
		t.Errorf("sharded match failed: %q", out)
	}
	if !strings.Contains(out, "nearest matches") {
		t.Errorf("sharded knn failed: %q", out)
	}
}

// TestCLIFlagValidation pins the new flags' error handling.
func TestCLIFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-parallelism"}, strings.NewReader(""), &out); err == nil {
		t.Error("-parallelism without value: want error")
	}
	if err := run([]string{"-rebuild-drift", "x"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad -rebuild-drift: want error")
	}
	if err := run([]string{"-shards", "-2"}, strings.NewReader(""), &out); err == nil {
		t.Error("negative -shards: want build error")
	}
}
