// Command onex-cli is an interactive terminal explorer for ONEX — the
// reproduction of the paper's analyst-facing tool. It loads a UCR-format
// file or generates a synthetic paper dataset, builds the ONEX base, and
// answers the three query classes interactively.
//
// Usage:
//
//	onex-cli [-data file.tsv | -generate ItalyPower] [-st 0.2] [-lengths 16] [-scale 0.25]
//	         [-parallelism 0] [-rebuild-drift 0] [-shards 0]
//
// Commands at the prompt:
//
//	match <len> <v1,v2,...|series:start>   best match, any length (Q1)
//	matchx <v1,v2,...|series:start:len>    best match, exact length
//	seasonal <seriesID> <len>              recurring patterns of a series (Q2)
//	seasonalall <len>                      dataset-wide recurring patterns
//	recommend <S|M|L> [len]                threshold ranges (Q3)
//	threshold <st'>                        adapt the base to a new threshold
//	stats                                  base statistics
//	help, quit
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"onex"
	"onex/internal/dataset"
	"onex/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "onex-cli:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	var (
		dataPath     string
		genName      = "ItalyPower"
		st           = 0.2
		lengths      = 16
		scale        = 0.25
		seed         = int64(1)
		parallelism  = 0
		rebuildDrift = 0.0
		shards       = 0
	)
	// Minimal flag parsing so the binary stays self-contained.
	for i := 0; i < len(args); i++ {
		need := func() (string, error) {
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag %s needs a value", args[i])
			}
			i++
			return args[i], nil
		}
		var err error
		var v string
		switch args[i] {
		case "-data":
			if dataPath, err = need(); err != nil {
				return err
			}
		case "-generate":
			if genName, err = need(); err != nil {
				return err
			}
		case "-st":
			if v, err = need(); err != nil {
				return err
			}
			if st, err = strconv.ParseFloat(v, 64); err != nil {
				return err
			}
		case "-lengths":
			if v, err = need(); err != nil {
				return err
			}
			if lengths, err = strconv.Atoi(v); err != nil {
				return err
			}
		case "-scale":
			if v, err = need(); err != nil {
				return err
			}
			if scale, err = strconv.ParseFloat(v, 64); err != nil {
				return err
			}
		case "-seed":
			if v, err = need(); err != nil {
				return err
			}
			if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return err
			}
		case "-parallelism":
			// Build/query worker fan-out, mirroring onex-server's flag
			// (0 = GOMAXPROCS; answers identical at every value).
			if v, err = need(); err != nil {
				return err
			}
			if parallelism, err = strconv.Atoi(v); err != nil {
				return err
			}
		case "-rebuild-drift":
			// Amortized-rebuild threshold of incremental maintenance
			// (0 = default 0.25, negative disables), as onex-server exposes.
			if v, err = need(); err != nil {
				return err
			}
			if rebuildDrift, err = strconv.ParseFloat(v, 64); err != nil {
				return err
			}
		case "-shards":
			// Intra-dataset shard count (0/1 = unsharded).
			if v, err = need(); err != nil {
				return err
			}
			if shards, err = strconv.Atoi(v); err != nil {
				return err
			}
		case "-h", "-help", "--help":
			fmt.Fprintln(stdout, "usage: onex-cli [-data file | -generate name] [-st 0.2] [-lengths 16] [-scale 0.25] [-seed 1] [-parallelism 0] [-rebuild-drift 0] [-shards 0]")
			return nil
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	series, name, err := loadSeries(dataPath, genName, scale, seed)
	if err != nil {
		return err
	}
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	fmt.Fprintf(stdout, "building ONEX base over %q: %d series, ST=%.2f…\n", name, len(series), st)
	base, err := onex.Build(name, series, onex.Options{
		ST:           st,
		Lengths:      spread(maxLen, lengths),
		Seed:         seed,
		Parallelism:  parallelism,
		RebuildDrift: rebuildDrift,
		Shards:       shards,
	})
	if err != nil {
		return err
	}
	bs := base.Stats()
	fmt.Fprintf(stdout, "ready: %d representatives over %d subsequences (%.2f MB) in %v\n",
		bs.Representatives, bs.Subsequences, float64(bs.IndexBytes)/(1<<20), bs.BuildTime)
	fmt.Fprintln(stdout, `type "help" for commands`)

	return repl(base, series, stdin, stdout)
}

func loadSeries(dataPath, genName string, scale float64, seed int64) ([]onex.Series, string, error) {
	if dataPath != "" {
		d, err := dataset.LoadUCRFile(dataPath)
		if err != nil {
			return nil, "", err
		}
		out := make([]onex.Series, 0, d.N())
		for _, s := range d.Series {
			out = append(out, onex.Series{Label: s.Label, Values: s.Values})
		}
		return out, d.Name, nil
	}
	sp, ok := dataset.ByName(genName)
	if !ok {
		return nil, "", fmt.Errorf("unknown dataset %q (have %s)", genName, strings.Join(dataset.Names(), ", "))
	}
	d := sp.Scaled(scale).Generate(seed)
	out := make([]onex.Series, 0, d.N())
	for _, s := range d.Series {
		out = append(out, onex.Series{Label: s.Label, Values: s.Values})
	}
	return out, sp.Name, nil
}

func spread(max, count int) []int {
	if count <= 0 || max < 2 {
		return nil
	}
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		l := 2 + i*(max-2)/count
		if count > 1 {
			l = 2 + i*(max-2)/(count-1)
		}
		if l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

func repl(base *onex.Base, series []onex.Series, stdin io.Reader, stdout io.Writer) error {
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "onex> ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, rest := fields[0], fields[1:]
		var err error
		switch cmd {
		case "quit", "exit", "q":
			return nil
		case "help":
			printHelp(stdout)
		case "stats":
			printStats(base, stdout)
		case "match":
			err = doMatch(base, series, rest, onex.MatchAny, stdout)
		case "matchx":
			err = doMatch(base, series, rest, onex.MatchExact, stdout)
		case "knn":
			err = doKNN(base, series, rest, stdout)
		case "range":
			err = doRange(base, series, rest, stdout)
		case "seasonal":
			err = doSeasonal(base, rest, stdout)
		case "seasonalall":
			err = doSeasonalAll(base, rest, stdout)
		case "recommend":
			err = doRecommend(base, rest, stdout)
		case "spspace":
			err = doSPSpace(base, stdout)
		case "plot":
			err = doPlot(series, rest, stdout)
		case "threshold":
			base, err = doThreshold(base, rest, stdout)
		case "save":
			err = doSave(base, rest, stdout)
		case "load":
			var loaded *onex.Base
			if loaded, err = doLoad(rest, stdout); err == nil {
				base = loaded
			}
		default:
			err = fmt.Errorf("unknown command %q (try help)", cmd)
		}
		if err != nil {
			fmt.Fprintln(stdout, "error:", err)
		}
	}
}

func printHelp(w io.Writer) {
	fmt.Fprint(w, `commands:
  match <series:start:len | v1,v2,...>    best match of any length (Q1)
  matchx <series:start:len | v1,v2,...>   best match of the query's length
  knn <k> <series:start:len | v1,...>     k nearest matches of any length
  range <radius> <series:start:len|v1,..> all matches within radius
  seasonal <seriesID> <len>               recurring patterns of one series (Q2)
  seasonalall <len>                       dataset-wide recurring patterns
  recommend <S|M|L> [len]                 similarity threshold ranges (Q3)
  spspace                                 per-length ST_half/ST_final table (Fig 1)
  plot <series:start:len | v1,v2,...>     render a sequence in the terminal
  threshold <st'>                         adapt base to a new threshold (Sec 5.2)
  save <file>                             persist the base
  load <file>                             reopen a persisted base
  stats                                   base statistics
  quit
`)
}

func printStats(base *onex.Base, w io.Writer) {
	s := base.Stats()
	fmt.Fprintf(w, "ST=%.3f  representatives=%d  subsequences=%d  index=%.2f MB\n",
		base.ST(), s.Representatives, s.Subsequences, float64(s.IndexBytes)/(1<<20))
	if s.Shards > 1 {
		fmt.Fprintf(w, "shards: %d", s.Shards)
		for _, sh := range s.PerShard {
			fmt.Fprintf(w, "  [%d: %d series, %d groups]", sh.Shard, sh.Series, sh.Groups)
		}
		fmt.Fprintln(w)
	}
	if s.Drift > 0 || s.Rebuilds > 0 {
		fmt.Fprintf(w, "drift=%.3f  rebuilds=%d  lastRebuild=%v\n", s.Drift, s.Rebuilds, s.LastRebuild)
	}
	fmt.Fprintf(w, "SP-Space: ST_half=%.4f  ST_final=%.4f  build=%v\n", s.STHalf, s.STFinal, s.BuildTime)
	ls := base.Lengths()
	fmt.Fprintf(w, "indexed lengths (%d): %v\n", len(ls), ls)
}

// parseQuery accepts "series:start:len" (a subsequence reference) or a
// comma-separated value list (an analyst-designed sequence, Sec. 1.1).
func parseQuery(series []onex.Series, arg string) ([]float64, error) {
	if strings.Contains(arg, ":") {
		parts := strings.Split(arg, ":")
		if len(parts) != 3 {
			return nil, errors.New("subsequence reference must be series:start:len")
		}
		sid, err1 := strconv.Atoi(parts[0])
		start, err2 := strconv.Atoi(parts[1])
		length, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, errors.New("subsequence reference must be integers series:start:len")
		}
		if sid < 0 || sid >= len(series) {
			return nil, fmt.Errorf("series %d out of range", sid)
		}
		v := series[sid].Values
		if start < 0 || length < 1 || start+length > len(v) {
			return nil, fmt.Errorf("window [%d,%d+%d) out of range", start, start, length)
		}
		return append([]float64(nil), v[start:start+length]...), nil
	}
	var q []float64
	for _, f := range strings.Split(arg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		q = append(q, v)
	}
	return q, nil
}

func doMatch(base *onex.Base, series []onex.Series, args []string, mode onex.MatchMode, w io.Writer) error {
	if len(args) != 1 {
		return errors.New("usage: match <series:start:len | v1,v2,...>")
	}
	q, err := parseQuery(series, args[0])
	if err != nil {
		return err
	}
	m, err := base.BestMatch(q, mode)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "best match: series %d [%d:%d) length %d, normalized DTW %.4f\n",
		m.SeriesID, m.Start, m.Start+m.Length, m.Length, m.Distance)
	fmt.Fprint(w, viz.Compare(q, m.Values, m.Distance))
	return nil
}

func doKNN(base *onex.Base, series []onex.Series, args []string, w io.Writer) error {
	if len(args) != 2 {
		return errors.New("usage: knn <k> <series:start:len | v1,v2,...>")
	}
	k, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	q, err := parseQuery(series, args[1])
	if err != nil {
		return err
	}
	ms, err := base.BestKMatches(q, onex.MatchAny, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d nearest matches:\n", len(ms))
	for i, m := range ms {
		fmt.Fprintf(w, "  %2d. series %d [%d:%d) len %d  dist %.4f  %s\n",
			i+1, m.SeriesID, m.Start, m.Start+m.Length, m.Length, m.Distance,
			viz.Sparkline(m.Values))
	}
	return nil
}

func doRange(base *onex.Base, series []onex.Series, args []string, w io.Writer) error {
	if len(args) != 2 {
		return errors.New("usage: range <radius> <series:start:len | v1,v2,...>")
	}
	radius, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return err
	}
	q, err := parseQuery(series, args[1])
	if err != nil {
		return err
	}
	ms, err := base.RangeSearch(q, len(q), radius)
	if err != nil {
		return err
	}
	guaranteed := 0
	for _, m := range ms {
		if m.Guaranteed {
			guaranteed++
		}
	}
	fmt.Fprintf(w, "%d matches within %.4f (%d admitted wholesale via Lemma 2)\n",
		len(ms), radius, guaranteed)
	for i, m := range ms {
		if i >= 10 {
			fmt.Fprintf(w, "  … %d more\n", len(ms)-10)
			break
		}
		tag := ""
		if m.Guaranteed {
			tag = " [guaranteed]"
		}
		fmt.Fprintf(w, "  series %d [%d:%d) dist ≤ %.4f%s\n",
			m.SeriesID, m.Start, m.Start+m.Length, m.Distance, tag)
	}
	return nil
}

func doSave(base *onex.Base, args []string, w io.Writer) error {
	if len(args) != 1 {
		return errors.New("usage: save <file>")
	}
	f, err := os.Create(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := base.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "saved %d bytes to %s\n", info.Size(), args[0])
	return nil
}

func doLoad(args []string, w io.Writer) (*onex.Base, error) {
	if len(args) != 1 {
		return nil, errors.New("usage: load <file>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base, err := onex.Load(f)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "loaded base: %d representatives, ST=%.3f\n",
		base.Stats().Representatives, base.ST())
	return base, nil
}

func doSeasonal(base *onex.Base, args []string, w io.Writer) error {
	if len(args) != 2 {
		return errors.New("usage: seasonal <seriesID> <len>")
	}
	sid, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	length, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	ps, err := base.Seasonal(sid, length)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d recurring pattern(s) of length %d in series %d\n", len(ps), length, sid)
	for i, p := range ps {
		fmt.Fprintf(w, "  pattern %d: %d occurrences at starts", i, len(p.Occurrences))
		for _, o := range p.Occurrences {
			fmt.Fprintf(w, " %d", o.Start)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func doSeasonalAll(base *onex.Base, args []string, w io.Writer) error {
	if len(args) != 1 {
		return errors.New("usage: seasonalall <len>")
	}
	length, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	ps, err := base.SeasonalAll(length)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d recurring pattern(s) of length %d across the dataset\n", len(ps), length)
	for i, p := range ps {
		if i >= 10 {
			fmt.Fprintf(w, "  … %d more\n", len(ps)-10)
			break
		}
		fmt.Fprintf(w, "  pattern %d: %d occurrences\n", i, len(p.Occurrences))
	}
	return nil
}

func doRecommend(base *onex.Base, args []string, w io.Writer) error {
	if len(args) < 1 || len(args) > 2 {
		return errors.New("usage: recommend <S|M|L> [len]")
	}
	var deg onex.Degree
	switch strings.ToUpper(args[0]) {
	case "S":
		deg = onex.Strict
	case "M":
		deg = onex.Medium
	case "L":
		deg = onex.Loose
	default:
		return fmt.Errorf("unknown degree %q (want S, M or L)", args[0])
	}
	length := -1
	if len(args) == 2 {
		var err error
		if length, err = strconv.Atoi(args[1]); err != nil {
			return err
		}
	}
	r, err := base.RecommendThreshold(deg, length)
	if err != nil {
		return err
	}
	scope := "globally"
	if length >= 0 {
		scope = fmt.Sprintf("for length %d", length)
	}
	fmt.Fprintf(w, "%s similarity %s: thresholds in %s\n", deg, scope, r)
	return nil
}

// doSPSpace prints the Similarity Parameter Space (Fig. 1): the per-length
// critical thresholds and the global S/M/L boundaries they induce.
func doSPSpace(base *onex.Base, w io.Writer) error {
	fmt.Fprintln(w, "length  ST_half  ST_final")
	for _, l := range base.Lengths() {
		m, err := base.RecommendThreshold(onex.Medium, l)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d  %.4f   %.4f\n", l, m.Low, m.High)
	}
	s := base.Stats()
	fmt.Fprintf(w, "global  ST_half=%.4f ST_final=%.4f  (S < %.4f ≤ M < %.4f ≤ L)\n",
		s.STHalf, s.STFinal, s.STHalf, s.STFinal)
	return nil
}

func doPlot(series []onex.Series, args []string, w io.Writer) error {
	if len(args) != 1 {
		return errors.New("usage: plot <series:start:len | v1,v2,...>")
	}
	q, err := parseQuery(series, args[0])
	if err != nil {
		return err
	}
	fmt.Fprint(w, viz.Plot(q, 72, 10))
	return nil
}

func doThreshold(base *onex.Base, args []string, w io.Writer) (*onex.Base, error) {
	if len(args) != 1 {
		return base, errors.New("usage: threshold <st'>")
	}
	st, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return base, err
	}
	adapted, err := base.WithThreshold(st)
	if err != nil {
		return base, err
	}
	fmt.Fprintf(w, "adapted to ST'=%.3f: %d representatives (was %d)\n",
		st, adapted.Stats().Representatives, base.Stats().Representatives)
	return adapted, nil
}
