// Policy example — the paper's motivating scenario (Sec. 1.1): analysts
// studying a proposed tax repeal compare economic indicators of different
// lengths and alignments across states, design a growth-rate timeline
// indicating a positive outcome, and need guidance choosing similarity
// thresholds across heterogeneous domains.
//
//	go run ./examples/policy
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"onex"
)

func main() {
	// Synthetic indicators for 25 "states": quarterly growth rates reported
	// over different intervals (lengths 40–80), seasonal + trend + shock.
	r := rand.New(rand.NewSource(2013)) // the year of the Massachusetts repeal
	var series []onex.Series
	for s := 0; s < 25; s++ {
		n := 40 + r.Intn(41)
		v := make([]float64, n)
		trend := r.NormFloat64() * 0.02
		shockAt := -1
		if r.Intn(3) == 0 { // a third of the states saw a tax shock
			shockAt = n/3 + r.Intn(n/3)
		}
		level := 2 + r.NormFloat64()
		for i := range v {
			level += trend
			season := 0.5 * math.Sin(2*math.Pi*float64(i)/4)
			shock := 0.0
			if shockAt >= 0 && i >= shockAt {
				shock = -1.5 * math.Exp(-float64(i-shockAt)/6)
			}
			v[i] = level + season + shock + 0.1*r.NormFloat64()
		}
		series = append(series, onex.Series{Label: fmt.Sprintf("state-%02d", s), Values: v})
	}

	// Indicators live on different scales → per-series normalization.
	base, err := onex.Build("growth-rates", series, onex.Options{
		ST:        0.2,
		Lengths:   []int{8, 12, 16, 24, 32},
		Normalize: onex.NormalizePerSeries,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d states (%d subsequences, %d representatives)\n\n",
		len(series), base.Stats().Subsequences, base.Stats().Representatives)

	// Step 1 — threshold guidance (Q3): what do strict/medium/loose mean on
	// THIS data? (Sec. 4.2: demographic data needs different thresholds
	// than growth rates.)
	for _, deg := range []onex.Degree{onex.Strict, onex.Medium, onex.Loose} {
		rng, err := base.RecommendThreshold(deg, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q3 %s similarity: %s\n", deg, rng)
	}

	// Step 2 — the designed query (Q1): a "recovery after tax change"
	// timeline — dip then steady growth over ~4 years (16 quarters). This
	// exact sequence exists in no state; close matches show states with
	// similar short-term impacts.
	design := make([]float64, 16)
	for i := range design {
		base := 0.35
		if i < 5 {
			design[i] = base - 0.25*float64(5-i)/5 // dip
		} else {
			design[i] = base + 0.4*float64(i-5)/10 // recovery
		}
	}
	m, err := base.BestMatch(design, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ1 closest real outcome to the designed recovery: %s over %d quarters (dist %.4f)\n",
		series[m.SeriesID].Label, m.Length, m.Distance)

	// Step 3 — recurring impacts (Q2): does any state show the same
	// 12-quarter pattern twice (e.g. seasonal budget cycles)?
	recurring := 0
	for sid := range series {
		ps, err := base.Seasonal(sid, 12)
		if err != nil {
			log.Fatal(err)
		}
		if len(ps) > 0 {
			recurring++
		}
	}
	fmt.Printf("Q2 states with recurring 12-quarter growth patterns: %d of %d\n",
		recurring, len(series))

	// Step 4 — explore a looser similarity without rebuilding (Sec. 5.2).
	loose, err := base.WithThreshold(0.45)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := loose.BestMatch(design, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat ST'=0.45 the base compacts to %d representatives; the match becomes %s\n",
		loose.Stats().Representatives, series[m2.SeriesID].Label)
}
