// Finance example — the paper's stock-market use case (Sec. 5.1, Q1):
// an analyst retrieves the stock most similar to a reference stock's recent
// fluctuation, then *designs* a hypothetical "V-shaped recovery" and searches
// for the closest real pattern of any duration, even though the designed
// sequence does not exist in the data.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"onex"
)

func main() {
	// 60 synthetic "stocks": random walks with drift, 250 trading days.
	r := rand.New(rand.NewSource(7))
	var series []onex.Series
	for s := 0; s < 60; s++ {
		v := make([]float64, 250)
		price, drift := 100.0, r.NormFloat64()*0.05
		for i := range v {
			price += drift + r.NormFloat64()
			v[i] = price
		}
		series = append(series, onex.Series{Label: fmt.Sprintf("TICK%02d", s), Values: v})
	}

	base, err := onex.Build("stocks", series, onex.Options{
		ST:      0.1,
		Lengths: []int{10, 20, 30, 45, 60, 90},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d subsequences of 60 stocks into %d representatives\n\n",
		base.Stats().Subsequences, base.Stats().Representatives)

	// Case 1: the query exists in the dataset — "which stock moved like
	// TICK07's last 30 days?" (normalize the window the way the base did:
	// queries run against dataset-level min-max normalized values, so we
	// pull the window from the normalized match space via a first query).
	ref := series[7].Values[220:250]
	norm := normalizeLike(series, ref)
	m, err := base.BestMatch(norm, onex.MatchExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stock window most similar to TICK07[220:250]: %s (%s)\n",
		m, series[m.SeriesID].Label)

	// Case 2: a designed query — V-shaped recovery over ~30 days. The exact
	// shape exists nowhere; ONEX returns the closest warped match of any
	// indexed duration.
	v := make([]float64, 30)
	for i := range v {
		if i < 15 {
			v[i] = 1 - float64(i)/15 // decline
		} else {
			v[i] = float64(i-15) / 15 // recovery
		}
	}
	scale(v, 0.3, 0.4) // place it mid-range of normalized prices
	m, err = base.BestMatch(v, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest real V-recovery: %s (%s), duration %d days\n",
		m, series[m.SeriesID].Label, m.Length)

	// How strict was that? Let the SP-Space translate.
	deg := base.DegreeOf(m.Distance * 2)
	fmt.Printf("a threshold of %.3f would be %q similarity for this dataset\n",
		m.Distance*2, deg)
}

// normalizeLike maps raw values into the dataset-level min-max space the
// base indexes (Sec. 6.1 normalization).
func normalizeLike(series []onex.Series, raw []float64) []float64 {
	min, max := raw[0], raw[0]
	for _, s := range series {
		for _, v := range s.Values {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = (v - min) / (max - min)
	}
	return out
}

// scale linearly maps v from [min(v),max(v)] to [lo,hi].
func scale(v []float64, lo, hi float64) {
	mn, mx := v[0], v[0]
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	if mx == mn {
		return
	}
	for i, x := range v {
		v[i] = lo + (x-mn)/(mx-mn)*(hi-lo)
	}
}
