// ECG example — seasonal similarity (class II, Sec. 5.1 Q2) on heartbeat
// data: find the recurring morphology inside a long recording and the
// beat shapes shared across patients, the medical use case from the
// paper's introduction.
//
//	go run ./examples/ecg
package main

import (
	"fmt"
	"log"

	"onex"
	"onex/internal/dataset"
)

func main() {
	// A long "recording": concatenated heartbeats of one synthetic patient,
	// plus 30 other patients' single beats for cross-patient search.
	beats := dataset.ECG.Scaled(0.2).Generate(42) // 40 beats of 96 samples
	var recording []float64
	for i := 0; i < 10; i++ {
		recording = append(recording, beats.Series[i*2].Values...) // class-0 beats
	}
	series := []onex.Series{{Label: "patient-0-recording", Values: recording}}
	for i := 20; i < 40; i++ {
		series = append(series, onex.Series{
			Label:  fmt.Sprintf("patient-%d", i),
			Values: beats.Series[i].Values,
		})
	}

	base, err := onex.Build("ecg", series, onex.Options{
		ST:      0.25,
		Lengths: []int{24, 48, 96},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d subsequences into %d representatives\n\n",
		base.Stats().Subsequences, base.Stats().Representatives)

	// User-driven seasonal similarity: the repeating beat inside the
	// 960-sample recording. A beat is ~96 samples, so recurring length-96
	// windows are the heartbeats themselves.
	patterns, err := base.Seasonal(0, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recurring length-96 patterns in the recording: %d\n", len(patterns))
	for i, p := range patterns {
		if i >= 3 {
			fmt.Printf("  … %d more\n", len(patterns)-3)
			break
		}
		fmt.Printf("  pattern %d recurs %d times, first at offsets %v…\n",
			i, len(p.Occurrences), firstStarts(p, 4))
	}

	// Data-driven seasonal similarity: beat shapes shared across patients.
	shared, err := base.SeasonalAll(96)
	if err != nil {
		log.Fatal(err)
	}
	crossPatient := 0
	for _, p := range shared {
		patients := map[int]bool{}
		for _, o := range p.Occurrences {
			patients[o.SeriesID] = true
		}
		if len(patients) > 1 {
			crossPatient++
		}
	}
	fmt.Printf("\nlength-96 beat shapes shared by ≥2 patients: %d of %d groups\n",
		crossPatient, len(shared))

	// Bonus class-I query: which patient's beat is most like the
	// recording's first beat?
	m, err := base.BestMatch(normalizedWindow(base, 0, 96), onex.MatchExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest beat to the recording's first: %s (%s)\n",
		m, series[m.SeriesID].Label)
}

func firstStarts(p onex.Pattern, n int) []int {
	var out []int
	for _, o := range p.Occurrences {
		out = append(out, o.Start)
		if len(out) == n {
			break
		}
	}
	return out
}

// normalizedWindow fetches a window already mapped into the base's
// normalized space by querying for itself first (exact self-match).
func normalizedWindow(base *onex.Base, seriesID, length int) []float64 {
	ps, err := base.Seasonal(seriesID, length)
	if err == nil && len(ps) > 0 {
		return ps[0].Representative
	}
	// Fall back to a flat probe if the series never recurs.
	v := make([]float64, length)
	for i := range v {
		v[i] = 0.5
	}
	return v
}
