// Quickstart: build an ONEX base over a small synthetic dataset, then run
// one query from each of the three classes the paper supports (Sec. 5.1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"onex"
)

func main() {
	// 40 noisy sinusoids with different phases — stand-ins for any
	// collection of related measurements.
	var series []onex.Series
	for s := 0; s < 40; s++ {
		v := make([]float64, 64)
		for i := range v {
			v[i] = math.Sin(2*math.Pi*float64(i)/16+float64(s)*0.15) +
				0.05*math.Sin(float64(7*i+s))
		}
		series = append(series, onex.Series{Label: "sensor", Values: v})
	}

	// One-time preprocessing: group all subsequences of the chosen lengths
	// by Euclidean distance (radius ST/2) and index the representatives.
	base, err := onex.Build("quickstart", series, onex.Options{
		ST:      0.2,
		Lengths: []int{8, 16, 24, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := base.Stats()
	fmt.Printf("base ready: %d representatives summarize %d subsequences (%.2f MB, built in %v)\n\n",
		st.Representatives, st.Subsequences, float64(st.IndexBytes)/(1<<20), st.BuildTime)

	// Class I — similarity query: design a target shape and find the most
	// similar subsequence of any length, compared by DTW.
	query := make([]float64, 16)
	for i := range query {
		query[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	match, err := base.BestMatch(query, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 best match: %s\n", match)

	// Class II — seasonal similarity: where does series 0 repeat itself?
	patterns, err := base.Seasonal(0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2 series 0 has %d recurring length-16 pattern(s)", len(patterns))
	if len(patterns) > 0 {
		fmt.Printf("; first recurs %d times", len(patterns[0].Occurrences))
	}
	fmt.Println()

	// Class III — threshold recommendation: what does "strict" mean here?
	rng, err := base.RecommendThreshold(onex.Strict, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q3 strict-similarity thresholds: %s\n", rng)

	// Sec. 5.2 — explore a looser notion of similarity without rebuilding.
	looser, err := base.WithThreshold(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted to ST'=0.5: %d representatives (was %d)\n",
		looser.Stats().Representatives, st.Representatives)
}
