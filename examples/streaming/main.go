// Streaming example — incremental base maintenance: new series arrive in
// batches (sensors coming online, fresh trading days) and join the existing
// ONEX base through the Algorithm 1 assignment rule without rebuilding.
// The paper defers maintenance to its tech report; this demonstrates the
// repository's implementation of it (grouping.Extend / Base.Extend).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"onex"
)

func main() {
	r := rand.New(rand.NewSource(99))
	makeSensor := func(kind int) onex.Series {
		v := make([]float64, 96)
		for i := range v {
			switch kind {
			case 0: // daily cycle
				v[i] = math.Sin(2*math.Pi*float64(i)/24) + 0.05*r.NormFloat64()
			case 1: // sawtooth load
				v[i] = math.Mod(float64(i), 16)/16 + 0.05*r.NormFloat64()
			default: // square duty cycle — appears only in late batches
				if (i/12)%2 == 0 {
					v[i] = 1
				}
				v[i] += 0.05 * r.NormFloat64()
			}
		}
		return onex.Series{Label: fmt.Sprintf("sensor-kind-%d", kind), Values: v}
	}

	// Initial fleet: 30 sensors of two kinds.
	var initial []onex.Series
	for i := 0; i < 30; i++ {
		initial = append(initial, makeSensor(i%2))
	}
	start := time.Now()
	base, err := onex.Build("fleet", initial, onex.Options{
		ST:      0.25,
		Lengths: []int{12, 24, 48},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: %d series → %d representatives in %v\n",
		len(initial), base.Stats().Representatives, time.Since(start))

	// A square-wave query: nothing like it is indexed yet.
	q := make([]float64, 24)
	for i := range q {
		if (i/12)%2 == 0 {
			q[i] = 1
		}
	}
	before, err := base.BestMatch(q, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("square-wave query before streaming: dist %.4f (kind %s)\n",
		before.Distance, initial[before.SeriesID].Label)

	// Stream three batches; the third introduces the square-wave kind.
	labels := make([]string, 0, 48)
	for _, s := range initial {
		labels = append(labels, s.Label)
	}
	for batch := 0; batch < 3; batch++ {
		var arrivals []onex.Series
		for i := 0; i < 6; i++ {
			kind := i % 2
			if batch == 2 {
				kind = 2
			}
			arrivals = append(arrivals, makeSensor(kind))
		}
		for _, s := range arrivals {
			labels = append(labels, s.Label)
		}
		start = time.Now()
		base, err = base.Extend(arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: +%d series in %v → %d representatives\n",
			batch+1, len(arrivals), time.Since(start), base.Stats().Representatives)
	}

	after, err := base.BestMatch(q, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("square-wave query after streaming:  dist %.4f (%s, series %d)\n",
		after.Distance, labels[after.SeriesID], after.SeriesID)
	if after.SeriesID >= len(initial) {
		fmt.Println("→ an incrementally added sensor is now the best match")
	}

	// Seasonal check on a streamed series: batch-3 sensors recur.
	newest := after.SeriesID
	patterns, err := base.Seasonal(newest, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recurring length-24 patterns in streamed series %d: %d\n", newest, len(patterns))
}
