// Streaming example — point-append ingestion: live sensors deliver new
// observations on *existing* series, and the base absorbs them through
// onex.Base.Append — only the suffix subsequences overlapping the new points
// are re-assigned (Algorithm 1's rule), the touched index state refreshes
// incrementally, and an amortized policy rebuilds from scratch once the
// incrementally-assigned fraction (drift) crosses Options.RebuildDrift.
// Whole new sensors still arrive via Extend; both paths compose freely.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"onex"
)

func main() {
	r := rand.New(rand.NewSource(99))
	// Sensor shapes: a daily sine cycle and a sawtooth load curve; the
	// square duty cycle only ever arrives through the live stream.
	point := func(kind, i int) float64 {
		switch kind {
		case 0:
			return math.Sin(2*math.Pi*float64(i)/24) + 0.05*r.NormFloat64()
		case 1:
			return math.Mod(float64(i), 16)/16 + 0.05*r.NormFloat64()
		default:
			v := 0.05 * r.NormFloat64()
			if (i/12)%2 == 0 {
				v += 1
			}
			return v
		}
	}
	window := func(kind, from, n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = point(kind, from+i)
		}
		return v
	}

	// Initial fleet: 20 sensors with 96 points of history each.
	var initial []onex.Series
	for s := 0; s < 20; s++ {
		initial = append(initial, onex.Series{
			Label:  fmt.Sprintf("sensor-%02d", s),
			Values: window(s%2, 0, 96),
		})
	}
	start := time.Now()
	base, err := onex.Build("fleet", initial, onex.Options{
		ST:      0.25,
		Lengths: []int{12, 24, 48},
		// The fleet shares one physical scale, so index raw values — queries
		// can then be phrased directly in sensor units.
		Normalize: onex.NormalizeNone,
		// Rebuild from scratch once 40% of the indexed windows joined
		// incrementally; until then every append is a cheap suffix update.
		RebuildDrift: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: %d series → %d representatives in %v\n",
		len(initial), base.Stats().Representatives, time.Since(start))

	// A square-wave query: nothing like it has been observed yet.
	q := make([]float64, 24)
	for i := range q {
		if (i/12)%2 == 0 {
			q[i] = 1
		}
	}
	before, err := base.BestMatch(q, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("square-wave query before streaming: dist %.4f\n", before.Distance)

	// Live traffic: 12 ticks of 8 fresh points per sensor. Sensor 7
	// malfunctions into a square duty cycle mid-stream — the index must
	// pick the new regime up without a rebuild.
	offsets := make([]int, len(initial))
	for i := range offsets {
		offsets[i] = 96
	}
	appendTotal := time.Duration(0)
	for tick := 0; tick < 12; tick++ {
		for s := 0; s < len(initial); s++ {
			kind := s % 2
			if s == 7 && tick >= 4 {
				kind = 2 // the square-wave malfunction
			}
			pts := window(kind, offsets[s], 8)
			offsets[s] += 8
			t0 := time.Now()
			base, err = base.Append(s, pts...)
			if err != nil {
				log.Fatal(err)
			}
			appendTotal += time.Since(t0)
		}
		if tick%4 == 3 {
			st := base.Stats()
			fmt.Printf("tick %2d: %d subsequences, %d representatives, drift %.1f%%\n",
				tick+1, st.Subsequences, st.Representatives, 100*st.Drift)
		}
	}
	fmt.Printf("absorbed %d point-batches in %v total\n", 12*len(initial), appendTotal)

	after, err := base.BestMatch(q, onex.MatchAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("square-wave query after streaming:  dist %.4f (series %d, start %d)\n",
		after.Distance, after.SeriesID, after.Start)
	if after.SeriesID == 7 && after.Start >= 96 {
		fmt.Println("→ the match is inside sensor 7's streamed malfunction window")
	}

	// A whole new sensor still arrives via Extend, composing with appends.
	base, err = base.Extend([]onex.Series{{Label: "sensor-20", Values: window(2, 0, 96)}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after Extend: %d series, drift %.1f%%\n", base.NumSeries(), 100*base.Stats().Drift)

	// Exact-distance range search around the square regime: every reported
	// distance is a true DTW, safe to rank on.
	matches, err := base.RangeSearchExact(q, 24, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	streamed := 0
	for _, m := range matches {
		if m.SeriesID == 7 && m.Start >= 96 || m.SeriesID == 20 {
			streamed++
		}
	}
	fmt.Printf("range search (radius 0.25): %d matches, %d inside streamed data\n",
		len(matches), streamed)
}
