// Hub example: drive two datasets through the serving substrate behind
// onex-server (internal/hub) — asynchronous builds on a worker pool, the
// query-result cache, incremental extension, and snapshot persistence with
// instant reload.
//
//	go run ./examples/hub
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"onex"
	"onex/internal/hub"
)

func main() {
	snapDir, err := os.MkdirTemp("", "onex-hub-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(snapDir)

	h := hub.New(hub.Config{
		BuildWorkers: 2,
		SnapshotDir:  snapDir, // every build is persisted to <dir>/<name>.onex
	})
	defer h.Close()

	// Register two datasets; both builds run concurrently on the pool.
	power, err := h.Register("power", hub.Spec{
		Generator: "ItalyPower", Scale: 0.4, Seed: 1,
		Opts: onex.Options{ST: 0.25, Seed: 1}, LengthCount: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := h.Register("sensors", hub.Spec{
		Series: sensorSeries(30, 64),
		Opts:   onex.Options{ST: 0.2, Lengths: []int{8, 16, 32}},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, ds := range []*hub.Dataset{power, sensors} {
		if err := ds.Wait(ctx); err != nil {
			log.Fatalf("build %s: %v", ds.Name(), err)
		}
		info := ds.Info()
		fmt.Printf("%-8s ready: %d series, %d representatives, built in %.0f ms\n",
			info.Name, info.Series, info.Representatives, info.BuildSeconds*1000)
	}

	// Query both. The second identical query is a cache hit.
	q := make([]float64, 16)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	for i := 0; i < 2; i++ {
		ms, err := sensors.Match(context.Background(), q, onex.MatchAny, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sensors best match: %v\n", ms[0])
	}
	info := sensors.Info()
	fmt.Printf("sensors cache: %d hit(s), %d miss(es)\n", info.CacheHits, info.CacheMisses)

	// Extend swaps in a larger base concurrently with queries and
	// invalidates the cache (generation bump).
	if err := sensors.Extend(sensorSeries(5, 64)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors extended: generation %d, %d series\n",
		sensors.Generation(), sensors.Info().Series)

	// Drop and re-register: the snapshot skips the rebuild entirely.
	if err := h.Drop("power", false); err != nil {
		log.Fatal(err)
	}
	again, err := h.Register("power", hub.Spec{
		Generator: "ItalyPower", Scale: 0.4, Seed: 1,
		Opts: onex.Options{ST: 0.25, Seed: 1}, LengthCount: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := again.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power re-registered from snapshot: %v\n", again.Info().FromSnapshot)

	st := h.Stats()
	fmt.Printf("hub: %d datasets (%v), cache %d/%d hit/miss\n",
		st.Datasets, st.ByState, st.Cache.Hits, st.Cache.Misses)
}

// sensorSeries fabricates phase-shifted noisy sinusoids.
func sensorSeries(n, length int) []onex.Series {
	out := make([]onex.Series, n)
	for s := range out {
		v := make([]float64, length)
		for i := range v {
			v[i] = math.Sin(2*math.Pi*float64(i)/16+float64(s)*0.2) +
				0.05*math.Sin(float64(5*i+3*s))
		}
		out[s] = onex.Series{Label: "sensor", Values: v}
	}
	return out
}
