package onex

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// TestSparseDenseEquivalenceProperty is the package-level exactness proof of
// the sparse top-k Dc index: for every query family the public API exposes —
// BestMatch (any and exact mode), BestKMatches, RangeSearch and
// RangeSearchExact, Seasonal/SeasonalAll, RecommendThreshold, DegreeOf and
// the Stats critical thresholds — the answers under the default sparse
// retention (DcTopK=0), an aggressive k=1 retention, and the dense-equivalent
// layout (DcTopK=-1) must be identical BIT FOR BIT, across sequential and
// parallel execution and across unsharded and sharded layouts. The stored Dc
// entries are never read on a query path — everything a query consumes is
// derived exactly at build time — so retention is a memory knob only; this
// suite is the regression fence for that argument.
func TestSparseDenseEquivalenceProperty(t *testing.T) {
	series := walkSeries(12, 56, 1137)
	lengths := []int{8, 16, 24}

	queries := [][]float64{
		append([]float64(nil), series[3].Values[9:25]...), // in-dataset window
		walkSeries(1, 16, 2025)[0].Values,                 // out-of-dataset walk
		walkSeries(1, 24, 7)[0].Values,                    // longer out-of-dataset
	}

	for _, shards := range []int{1, 3} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards%d/par%d", shards, par), func(t *testing.T) {
				opts := Options{
					ST:          0.3,
					Lengths:     lengths,
					Seed:        5,
					Parallelism: par,
					Shards:      shards,
				}
				build := func(topk int) *Base {
					o := opts
					o.DcTopK = topk
					b, err := Build("fixture", series, o)
					if err != nil {
						t.Fatalf("Build(DcTopK=%d): %v", topk, err)
					}
					return b
				}
				dense := build(-1)
				for _, topk := range []int{0, 1} {
					sparse := build(topk)
					compareBases(t, dense, sparse, queries, lengths)

					// Sparse retention must actually shrink the index: the
					// memory knob does its job even while answers are fixed.
					if ds, ss := dense.Stats().IndexBytes, sparse.Stats().IndexBytes; ss > ds {
						t.Errorf("DcTopK=%d index (%d B) larger than dense (%d B)", topk, ss, ds)
					}
				}
			})
		}
	}
}

// compareBases asserts bit-identical answers from every query family.
func compareBases(t *testing.T, a, b *Base, queries [][]float64, lengths []int) {
	t.Helper()

	for qi, q := range queries {
		for _, mode := range []MatchMode{MatchAny, MatchExact} {
			am, aerr := a.BestMatch(q, mode)
			bm, berr := b.BestMatch(q, mode)
			if (aerr == nil) != (berr == nil) {
				t.Fatalf("q%d BestMatch(%v) errors diverged: %v vs %v", qi, mode, aerr, berr)
			}
			if aerr == nil && !sameMatch(am, bm) {
				t.Fatalf("q%d BestMatch(%v) diverged: %+v vs %+v", qi, mode, am, bm)
			}

			ak, aerr := a.BestKMatches(q, mode, 4)
			bk, berr := b.BestKMatches(q, mode, 4)
			if (aerr == nil) != (berr == nil) || len(ak) != len(bk) {
				t.Fatalf("q%d BestKMatches(%v) shape diverged: %d/%v vs %d/%v",
					qi, mode, len(ak), aerr, len(bk), berr)
			}
			for i := range ak {
				if !sameMatch(ak[i], bk[i]) {
					t.Fatalf("q%d BestKMatches(%v)[%d] diverged: %+v vs %+v", qi, mode, i, ak[i], bk[i])
				}
			}
		}

		for _, exact := range []bool{false, true} {
			search := (*Base).RangeSearch
			if exact {
				search = (*Base).RangeSearchExact
			}
			ar, aerr := search(a, q, len(q), 0.35)
			br, berr := search(b, q, len(q), 0.35)
			if (aerr == nil) != (berr == nil) || len(ar) != len(br) {
				t.Fatalf("q%d RangeSearch(exact=%v) shape diverged: %d/%v vs %d/%v",
					qi, exact, len(ar), aerr, len(br), berr)
			}
			canonRange(ar)
			canonRange(br)
			for i := range ar {
				if ar[i].SeriesID != br[i].SeriesID || ar[i].Start != br[i].Start ||
					ar[i].Length != br[i].Length || ar[i].Guaranteed != br[i].Guaranteed ||
					ar[i].Distance != br[i].Distance {
					t.Fatalf("q%d RangeSearch(exact=%v)[%d] diverged: %+v vs %+v",
						qi, exact, i, ar[i], br[i])
				}
			}
		}
	}

	for _, l := range lengths {
		ap, aerr := a.SeasonalAll(l)
		bp, berr := b.SeasonalAll(l)
		if (aerr == nil) != (berr == nil) || len(ap) != len(bp) {
			t.Fatalf("SeasonalAll(%d) shape diverged: %d/%v vs %d/%v", l, len(ap), aerr, len(bp), berr)
		}
		for i := range ap {
			if len(ap[i].Occurrences) != len(bp[i].Occurrences) {
				t.Fatalf("SeasonalAll(%d) pattern %d occurrence counts diverged", l, i)
			}
			for j := range ap[i].Occurrences {
				if ap[i].Occurrences[j] != bp[i].Occurrences[j] {
					t.Fatalf("SeasonalAll(%d) pattern %d occurrence %d diverged", l, i, j)
				}
			}
		}
	}

	// Guidance surface: thresholds and recommendations are bit-equal.
	as, bs := a.Stats(), b.Stats()
	if as.STHalf != bs.STHalf || as.STFinal != bs.STFinal {
		t.Fatalf("critical thresholds diverged: (%v,%v) vs (%v,%v)",
			as.STHalf, as.STFinal, bs.STHalf, bs.STFinal)
	}
	for _, l := range append([]int{-1}, lengths...) {
		for _, d := range []Degree{Strict, Medium, Loose} {
			ar, aerr := a.RecommendThreshold(d, l)
			br, berr := b.RecommendThreshold(d, l)
			if (aerr == nil) != (berr == nil) || ar != br {
				t.Fatalf("RecommendThreshold(%v,%d) diverged: %v/%v vs %v/%v", d, l, ar, aerr, br, berr)
			}
		}
	}
	for _, p := range []float64{0, 1e-9, as.STHalf, math.Nextafter(as.STHalf, 2), as.STFinal, as.STFinal * 2} {
		if ad, bd := a.DegreeOf(p), b.DegreeOf(p); ad != bd {
			t.Fatalf("DegreeOf(%v) diverged: %v vs %v", p, ad, bd)
		}
	}
}

// sameMatch is bitwise match equality (Distance compared with ==, not a
// tolerance).
func sameMatch(a, b Match) bool {
	return a.SeriesID == b.SeriesID && a.Start == b.Start &&
		a.Length == b.Length && a.Distance == b.Distance
}

// canonRange orders range results by location so set equality can be
// asserted position by position.
func canonRange(rs []RangeMatch) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].SeriesID != rs[j].SeriesID {
			return rs[i].SeriesID < rs[j].SeriesID
		}
		if rs[i].Start != rs[j].Start {
			return rs[i].Start < rs[j].Start
		}
		return rs[i].Length < rs[j].Length
	})
}
