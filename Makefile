# Mirrors .github/workflows/ci.yml so contributors run the same gate
# locally before pushing: `make ci`.

GO ?= go

.PHONY: fmt fmt-check vet build test bench serve-smoke bench-serve ci

fmt: ## Reformat all Go sources in place
	gofmt -w .

fmt-check: ## Fail if any file needs gofmt (CI's formatting gate)
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet: ## Static analysis
	$(GO) vet ./...

build: ## Compile every package and binary
	$(GO) build ./...

test: ## Full test suite with the race detector (CI's main job)
	$(GO) test -race ./...

bench: ## Run every benchmark once (CI's bench-smoke job)
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

serve-smoke: ## Boot onex-server, drive the v1 API end to end (CI's serve-smoke job)
	sh scripts/serve_smoke.sh

bench-serve: ## Emit BENCH_serve.json: cold vs cached /match latency over HTTP
	ONEX_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test ./cmd/onex-server -run '^TestEmitServeBench$$' -v -count=1

ci: fmt-check vet build test bench serve-smoke ## The full local gate, same order as CI
