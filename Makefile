# Mirrors .github/workflows/ci.yml so contributors run the same gate
# locally before pushing: `make ci`.

GO ?= go

.PHONY: fmt fmt-check vet build test bench serve-smoke obs-smoke dist-smoke bench-serve bench-parallel bench-stream bench-shard bench-load bench-kernel bench-dist lint coverage ci

fmt: ## Reformat all Go sources in place
	gofmt -w .

fmt-check: ## Fail if any file needs gofmt (CI's formatting gate)
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet: ## Static analysis
	$(GO) vet ./...

build: ## Compile every package and binary
	$(GO) build ./...

test: ## Full test suite with the race detector, shuffled (CI's main job)
	$(GO) test -race -shuffle=on ./...

bench: ## Run every benchmark once (CI's bench-smoke job)
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

serve-smoke: ## Boot onex-server, drive the v1 API end to end (CI's serve-smoke job)
	sh scripts/serve_smoke.sh

obs-smoke: ## Boot onex-server with tracing/logging/pprof on and verify the observability surface
	sh scripts/obs_smoke.sh

dist-smoke: ## Boot 2 shard workers + coordinator, cross-check answers vs local references (incl. worker restart)
	sh scripts/dist_smoke.sh

bench-serve: ## Emit BENCH_serve.json: cold vs cached /match latency over HTTP
	ONEX_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test ./internal/api -run '^TestEmitServeBench$$' -v -count=1

bench-load: ## Emit BENCH_load.json: closed-loop mixed-traffic latency vs offered load
	$(GO) run ./cmd/onex-bench -exp load \
		-load-out $(CURDIR)/BENCH_load.json

bench-parallel: ## Emit BENCH_parallel.json: sequential vs parallel build/query/batch sweep
	$(GO) run ./cmd/onex-bench -exp parallel -scale 2 \
		-parallel-out $(CURDIR)/BENCH_parallel.json

bench-stream: ## Emit BENCH_stream.json: incremental point-append vs full rebuild sweep
	$(GO) run ./cmd/onex-bench -exp stream \
		-stream-out $(CURDIR)/BENCH_stream.json

bench-shard: ## Emit BENCH_shard.json: intra-dataset sharding sweep at shards 1/2/4/8
	$(GO) run ./cmd/onex-bench -exp shard -scale 2 \
		-shard-out $(CURDIR)/BENCH_shard.json

bench-kernel: ## Emit BENCH_kernel.json: fused vs reference DTW kernel, 1 goroutine
	$(GO) run ./cmd/onex-bench -exp kernel -repeats 5 \
		-kernel-out $(CURDIR)/BENCH_kernel.json

bench-dist: ## Emit BENCH_dist.json: local vs worker-served shard transport latency sweep
	$(GO) run ./cmd/onex-bench -exp dist \
		-dist-out $(CURDIR)/BENCH_dist.json

# Static analysis beyond go vet (CI's lint job runs this target, so the
# tool versions are pinned here alone). Tools are fetched on demand.
STATICCHECK_VERSION = 2024.1.1
GOVULNCHECK_VERSION = v1.1.3
lint: ## staticcheck + govulncheck (downloads the tools on first use)
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Coverage gate of the parallel/sharded execution engine: the packages the
# concurrency and layout-equivalence test suites exercise must stay
# ≥ $(COVER_MIN)% covered. -coverpkg merges cross-package coverage (the
# shard suite drives most of query's scatter executor, and the sparse-vs-
# dense equivalence suites drive rspace's retention and threshold paths).
COVER_MIN = 70
COVER_PKGS = ./internal/query/ ./internal/grouping/ ./internal/parallel/ ./internal/shard/ ./internal/rspace/
coverage: ## Enforce ≥ 70% statement coverage on query+grouping+parallel+shard+rspace
	$(GO) test -count=1 -coverprofile=cover.out \
		-coverpkg=$(shell echo "$(COVER_PKGS)" | tr ' ' ',') $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total%"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t + 0 < min) ? 1 : 0 }' \
		|| { echo "coverage $$total% is below $(COVER_MIN)%" >&2; exit 1; }

ci: fmt-check vet lint build test bench coverage serve-smoke obs-smoke dist-smoke ## The full local gate, same checks as CI
