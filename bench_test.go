// Benchmarks mirroring the paper's evaluation, one per table/figure.
// These are testing.B micro-views of the experiments (per-operation costs at
// a fixed small scale, so `go test -bench=.` completes in minutes);
// cmd/onex-bench regenerates the full tables/series and EXPERIMENTS.md
// records paper-vs-measured values.
//
// This file lives in the external test package: it only touches internal
// packages directly, and internal/bench now imports internal/api (for the
// serve-load sweep), which imports onex — an in-package test here would be
// an import cycle.
package onex_test

import (
	"fmt"
	"testing"

	"onex/internal/baseline"
	"onex/internal/bench"
	"onex/internal/core"
	"onex/internal/dataset"
	"onex/internal/grouping"
	"onex/internal/query"
	"onex/internal/stats"
	"onex/internal/ts"
)

// benchFixture builds one dataset + engine + baselines at bench scale.
type benchFixture struct {
	data    *ts.Dataset
	lengths []int
	queries [][]float64
	eng     *core.Engine
	trill   *baseline.Trillion
	paa     *baseline.PAA
	brute   *baseline.BruteForce
}

func newBenchFixture(b *testing.B, name string, scale float64, lengthCount, nQueries int) *benchFixture {
	b.Helper()
	sp, ok := dataset.ByName(name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	sp = sp.Scaled(scale)
	d := sp.Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	var lengths []int
	for i := 0; i < lengthCount; i++ {
		l := 4 + i*(sp.Length-4)/lengthCount
		if len(lengths) == 0 || l != lengths[len(lengths)-1] {
			lengths = append(lengths, l)
		}
	}
	eng, err := core.Build(d, core.BuildConfig{ST: 0.2, Lengths: lengths, Seed: 1, Normalize: core.NormalizeNone})
	if err != nil {
		b.Fatal(err)
	}
	trill, err := baseline.NewTrillion(d, baseline.TrillionConfig{})
	if err != nil {
		b.Fatal(err)
	}
	paa, err := baseline.NewPAA(d, lengths, 0)
	if err != nil {
		b.Fatal(err)
	}
	brute, err := baseline.NewBruteForce(d)
	if err != nil {
		b.Fatal(err)
	}
	var queries [][]float64
	for i := 0; i < nQueries; i++ {
		l := lengths[(i+1)%len(lengths)]
		s := d.Series[i%d.N()]
		if l > s.Len() {
			l = s.Len()
		}
		start := (i * 7) % (s.Len() - l + 1)
		q := append([]float64(nil), s.Values[start:start+l]...)
		if i%2 == 1 { // half the queries perturbed "outside the dataset"
			for j := range q {
				q[j] += 0.02 * float64(j%3)
			}
		}
		queries = append(queries, q)
	}
	return &benchFixture{data: d, lengths: lengths, queries: queries,
		eng: eng, trill: trill, paa: paa, brute: brute}
}

// BenchmarkFig2SimilarityTime — Fig. 2: per-query similarity search cost for
// each system on the same data and candidate pool.
func BenchmarkFig2SimilarityTime(b *testing.B) {
	f := newBenchFixture(b, "ItalyPower", 1, 8, 8)
	b.Run("ONEX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.eng.Proc.BestMatch(f.queries[i%len(f.queries)], query.MatchAny); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Trillion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.trill.BestMatch(f.queries[i%len(f.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PAA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.paa.BestMatch(f.queries[i%len(f.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("StandardDTW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.brute.BestMatch(f.queries[i%len(f.queries)], f.lengths); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig3Scalability — Fig. 3: ONEX and Trillion query cost as the
// number of StarLightCurves series grows.
func BenchmarkFig3Scalability(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		sp := dataset.StarLight(n, 100)
		d := sp.Generate(1)
		if err := d.NormalizeMinMax(); err != nil {
			b.Fatal(err)
		}
		lengths := []int{25, 50, 75, 100}
		eng, err := core.Build(d, core.BuildConfig{ST: 0.2, Lengths: lengths, Seed: 1, Normalize: core.NormalizeNone})
		if err != nil {
			b.Fatal(err)
		}
		trill, err := baseline.NewTrillion(d, baseline.TrillionConfig{})
		if err != nil {
			b.Fatal(err)
		}
		q := append([]float64(nil), d.Series[0].Values[10:60]...)
		b.Run(fmt.Sprintf("ONEX/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Proc.BestMatch(q, query.MatchAny); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Trillion/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trill.BestMatch(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Seasonal — Fig. 4: seasonal-similarity query cost, sample-TS
// and all-TS variants.
func BenchmarkFig4Seasonal(b *testing.B) {
	f := newBenchFixture(b, "ECG", 0.2, 6, 2)
	l := f.lengths[len(f.lengths)/2]
	b.Run("SampleTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.eng.Proc.SeasonalSample(i%f.data.N(), l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AllTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.eng.Proc.SeasonalAll(l); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5Construction — Fig. 5: offline base-construction cost as the
// similarity threshold varies (higher ST → fewer groups → cheaper build).
func BenchmarkFig5Construction(b *testing.B) {
	sp := dataset.ItalyPower
	d := sp.Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	for _, st := range []float64{0.1, 0.2, 0.4, 0.8} {
		b.Run(fmt.Sprintf("ST=%.1f", st), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := grouping.Build(d, grouping.Config{ST: st, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Representatives — Fig. 6: the representative count the sweep
// of Fig. 5 produces, reported as a custom metric.
func BenchmarkFig6Representatives(b *testing.B) {
	sp := dataset.ItalyPower
	d := sp.Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	for _, st := range []float64{0.1, 0.2, 0.4, 0.8} {
		b.Run(fmt.Sprintf("ST=%.1f", st), func(b *testing.B) {
			var reps int
			for i := 0; i < b.N; i++ {
				gr, err := grouping.Build(d, grouping.Config{ST: st, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				reps = gr.TotalGroups()
			}
			b.ReportMetric(float64(reps), "reps")
		})
	}
}

// tradeoffBench measures the Fig. 7/8 quantities: per-query time at each ST
// with the accuracy against brute force reported as a custom metric.
func tradeoffBench(b *testing.B, name string, scale float64) {
	f := newBenchFixture(b, name, scale, 6, 4)
	var exact []float64
	for _, q := range f.queries {
		m, err := f.brute.BestMatch(q, f.lengths)
		if err != nil {
			b.Fatal(err)
		}
		exact = append(exact, m.Dist)
	}
	for _, st := range []float64{0.1, 0.2, 0.4} {
		eng, err := core.Build(f.data, core.BuildConfig{ST: st, Lengths: f.lengths, Seed: 1, Normalize: core.NormalizeNone})
		if err != nil {
			b.Fatal(err)
		}
		var dists []float64
		for _, q := range f.queries {
			m, err := eng.Proc.BestMatch(q, query.MatchAny)
			if err != nil {
				b.Fatal(err)
			}
			dists = append(dists, m.Dist)
		}
		acc, err := stats.Accuracy(dists, exact)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ST=%.1f", st), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Proc.BestMatch(f.queries[i%len(f.queries)], query.MatchAny); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(acc, "acc%")
		})
	}
}

// BenchmarkFig7Tradeoff — Fig. 7: accuracy/time trade-off on ItalyPower.
func BenchmarkFig7Tradeoff(b *testing.B) { tradeoffBench(b, "ItalyPower", 1) }

// BenchmarkFig8Tradeoff — Fig. 8: the same trade-off on Wafer.
func BenchmarkFig8Tradeoff(b *testing.B) { tradeoffBench(b, "Wafer", 0.03) }

// BenchmarkTable1SameLengthTime — Table 1: same-length query cost, ONEX-S vs
// Trillion.
func BenchmarkTable1SameLengthTime(b *testing.B) {
	f := newBenchFixture(b, "ECG", 0.15, 6, 6)
	b.Run("ONEX-S", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.eng.Proc.BestMatch(f.queries[i%len(f.queries)], query.MatchExact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Trillion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.trill.BestMatch(f.queries[i%len(f.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// accuracyBench measures a Table 2/3 accuracy column once and reports it as
// the benchmark metric while timing the system's query path.
func accuracyBench(b *testing.B, sameLength bool) {
	f := newBenchFixture(b, "ItalyPower", 1, 8, 8)
	var exact, onexD, trillD []float64
	mode := query.MatchAny
	if sameLength {
		mode = query.MatchExact
	}
	for _, q := range f.queries {
		var em baseline.Match
		var err error
		if sameLength {
			em, err = f.brute.BestMatchSameLength(q)
		} else {
			em, err = f.brute.BestMatch(q, f.lengths)
		}
		if err != nil {
			b.Fatal(err)
		}
		exact = append(exact, em.Dist)
		om, err := f.eng.Proc.BestMatch(q, mode)
		if err != nil {
			b.Fatal(err)
		}
		onexD = append(onexD, om.Dist)
		tm, err := f.trill.BestMatch(q)
		if err != nil {
			b.Fatal(err)
		}
		trillD = append(trillD, tm.Dist)
	}
	accONEX, err := stats.Accuracy(onexD, exact)
	if err != nil {
		b.Fatal(err)
	}
	accTrill, err := stats.Accuracy(trillD, exact)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ONEX", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.eng.Proc.BestMatch(f.queries[i%len(f.queries)], mode); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(accONEX, "acc%")
	})
	b.Run("Trillion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.trill.BestMatch(f.queries[i%len(f.queries)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(accTrill, "acc%")
	})
}

// BenchmarkTable2SameLengthAccuracy — Table 2: same-length accuracy.
func BenchmarkTable2SameLengthAccuracy(b *testing.B) { accuracyBench(b, true) }

// BenchmarkTable3AnyLengthAccuracy — Table 3: any-length accuracy.
func BenchmarkTable3AnyLengthAccuracy(b *testing.B) { accuracyBench(b, false) }

// BenchmarkTable4BaseSize — Table 4: full base materialization (groups +
// GTI/LSI indexes), with representative count and index MB as metrics.
func BenchmarkTable4BaseSize(b *testing.B) {
	sp := dataset.ItalyPower
	d := sp.Generate(1)
	if err := d.NormalizeMinMax(); err != nil {
		b.Fatal(err)
	}
	var reps int
	var mb float64
	for i := 0; i < b.N; i++ {
		eng, err := core.Build(d, core.BuildConfig{ST: 0.2, Seed: 1, Normalize: core.NormalizeNone})
		if err != nil {
			b.Fatal(err)
		}
		reps = eng.Base.TotalGroups()
		mb = float64(eng.Base.SizeBytes()) / (1 << 20)
	}
	b.ReportMetric(float64(reps), "reps")
	b.ReportMetric(mb, "MB")
}

// BenchmarkExperimentHarness exercises the bench-package registry end to end
// at miniature scale, guarding the cmd/onex-bench path.
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := bench.Config{ST: 0.2, Seed: 1, Scale: 0.2, LengthCount: 5,
		Queries: 2, Repeats: 1, Datasets: []string{"ItalyPower"}}
	for i := 0; i < b.N; i++ {
		s, err := bench.NewSession(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e, _ := bench.ByID("table4")
		if _, err := e.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}
