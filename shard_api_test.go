package onex

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// walkSeries builds continuous random-walk inputs: unlike the symmetric
// sine fixture, no two distinct windows tie on exact DTW, so the
// layout-equivalence checks below can demand identical match identities
// (bit-equal representative ties are the one documented case where the
// scan-order tie-break differs between layouts).
func walkSeries(n, length int, seed int64) []Series {
	r := rand.New(rand.NewSource(seed))
	out := make([]Series, 0, n)
	for s := 0; s < n; s++ {
		v := make([]float64, length)
		x := r.Float64() * 5
		for i := range v {
			x += r.NormFloat64()
			v[i] = x
		}
		out = append(out, Series{Label: "walk", Values: v})
	}
	return out
}

// TestShardsOption drives the sharded engine through the public API:
// Shards=N answers must equal the default single-engine path, stats must
// expose the layout, snapshots must round-trip it, and the documented
// restrictions must hold.
func TestShardsOption(t *testing.T) {
	series := walkSeries(9, 48, 42)
	opts := Options{ST: 0.25, Lengths: []int{8, 16, 24}}
	mono, err := Build("fixture", series, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = 3
	sharded, err := Build("fixture", series, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Shards() != 1 {
		t.Errorf("default base Shards() = %d, want 1", mono.Shards())
	}
	if sharded.Shards() != 3 {
		t.Errorf("sharded base Shards() = %d, want 3", sharded.Shards())
	}

	q := append([]float64(nil), series[2].Values[5:21]...)
	am, err := mono.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := sharded.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if am.SeriesID != bm.SeriesID || am.Start != bm.Start || am.Length != bm.Length ||
		math.Abs(am.Distance-bm.Distance) > 1e-12 {
		t.Fatalf("BestMatch diverged: %+v vs %+v", am, bm)
	}

	ak, err := mono.BestKMatches(q, MatchAny, 3)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := sharded.BestKMatches(q, MatchAny, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ak) != len(bk) {
		t.Fatalf("k-NN counts diverged: %d vs %d", len(ak), len(bk))
	}
	for i := range ak {
		if ak[i].SeriesID != bk[i].SeriesID || ak[i].Start != bk[i].Start ||
			math.Abs(ak[i].Distance-bk[i].Distance) > 1e-12 {
			t.Fatalf("k-NN %d diverged: %+v vs %+v", i, ak[i], bk[i])
		}
	}

	ar, err := mono.RangeSearchExact(q, 16, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	br, err := sharded.RangeSearchExact(q, 16, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar) != len(br) {
		t.Fatalf("range counts diverged: %d vs %d", len(ar), len(br))
	}
	canon := func(rs []RangeMatch) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].SeriesID != rs[j].SeriesID {
				return rs[i].SeriesID < rs[j].SeriesID
			}
			return rs[i].Start < rs[j].Start
		})
	}
	canon(ar)
	canon(br)
	for i := range ar {
		if ar[i].SeriesID != br[i].SeriesID || ar[i].Start != br[i].Start ||
			ar[i].Guaranteed != br[i].Guaranteed ||
			math.Abs(ar[i].Distance-br[i].Distance) > 1e-12 {
			t.Fatalf("range %d diverged: %+v vs %+v", i, ar[i], br[i])
		}
	}

	ap, err := mono.SeasonalAll(16)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := sharded.SeasonalAll(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != len(bp) {
		t.Fatalf("seasonal counts diverged: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if len(ap[i].Occurrences) != len(bp[i].Occurrences) {
			t.Fatalf("pattern %d occurrence counts diverged", i)
		}
		for j := range ap[i].Occurrences {
			if ap[i].Occurrences[j] != bp[i].Occurrences[j] {
				t.Fatalf("pattern %d occurrence %d diverged", i, j)
			}
		}
	}

	// Stats expose the layout and per-shard populations.
	st := sharded.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("Stats layout = %d shards / %d entries, want 3/3", st.Shards, len(st.PerShard))
	}
	series3, subseq := 0, int64(0)
	for _, sh := range st.PerShard {
		series3 += sh.Series
		subseq += sh.Subsequences
	}
	if series3 != sharded.NumSeries() || subseq != st.Subsequences {
		t.Errorf("per-shard sums (%d series, %d subseq) disagree with totals (%d, %d)",
			series3, subseq, sharded.NumSeries(), st.Subsequences)
	}
	if mono.LayoutSignature() == sharded.LayoutSignature() {
		t.Error("different layouts share a LayoutSignature")
	}

	// Snapshot round trip preserves the layout and the answers.
	path := filepath.Join(t.TempDir(), "sharded.onex")
	if err := sharded.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 3 {
		t.Errorf("reloaded Shards() = %d, want 3", loaded.Shards())
	}
	lm, err := loaded.BestMatch(q, MatchAny)
	if err != nil {
		t.Fatal(err)
	}
	if lm.SeriesID != bm.SeriesID || lm.Start != bm.Start || math.Abs(lm.Distance-bm.Distance) > 1e-12 {
		t.Fatalf("reloaded BestMatch diverged: %+v vs %+v", lm, bm)
	}

	// Maintenance flows through the sharded engine.
	grown, err := sharded.Append(0, 0.1, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Stats().Drift <= 0 {
		t.Error("append did not register drift")
	}

	// Documented restrictions.
	if _, err := Build("x", series, Options{ST: 0.2, Shards: -1}); err == nil {
		t.Error("negative Shards: want error")
	}
	if _, err := sharded.WithThreshold(0.4); err == nil {
		t.Error("sharded WithThreshold: want refusal")
	}
	if _, err := mono.WithThreshold(0.4); err != nil {
		t.Errorf("unsharded WithThreshold: %v", err)
	}
}
